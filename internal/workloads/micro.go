// Package workloads generates the instruction traces the paper profiles:
// the engineered microbenchmark of Fig. 6 with its TM (total misses) and
// CM (consecutive misses) parameters, small kernels reproducing the
// signal-shape studies of Figs. 1–5, statistical generators reproducing
// the memory character of the ten SPEC CPU2000 integer benchmarks of
// Tables III/IV, and a phased boot-sequence workload for Fig. 13.
package workloads

import (
	"fmt"

	"emprof/internal/sim"
)

// Region identifiers shared by the microbenchmark workloads, used as
// ground truth for slicing the signal.
const (
	RegionPageTouch uint16 = 1
	RegionMarkerA   uint16 = 2 // blank loop before the miss section
	RegionMisses    uint16 = 3
	RegionMarkerB   uint16 = 4 // blank loop after the miss section
)

// Register conventions for generated code.
const (
	regZero    = 0
	regChain   = 1 // serial PRNG/address chain
	regAddr    = 2
	regLoadDst = 8  // 8..15 rotate as load destinations
	regCounter = 16 // 16..23 loop counters
	regScratch = 24 // 24..39 scratch
)

// MicroParams configures the Fig. 6 microbenchmark.
type MicroParams struct {
	// TM is the total number of LLC misses the benchmark engineers.
	TM int
	// CM is the number of consecutive misses per group; a
	// micro-function call separates groups.
	CM int
	// Pages is the number of pages in the array; the working set
	// Pages×PageBytes must far exceed the LLC so every randomized access
	// misses.
	Pages int
	// PageBytes and LineBytes describe the layout (defaults 4096/64).
	PageBytes, LineBytes int
	// BlankIters is the iteration count of each marker loop.
	BlankIters int
	// CallWork is the ALU instruction count of the micro-function call.
	CallWork int
	// IterWork is the ALU instruction count of each miss-loop iteration's
	// address computation, modelling the two library rand() calls plus
	// address arithmetic of Fig. 6 (the paper's Fig. 7b shows misses
	// spaced on the order of a microsecond apart, i.e. the per-iteration
	// compute dominates the loop).
	IterWork int
	// TouchWork is the ALU instruction count modelling the kernel's
	// page-fault handling per touched page.
	TouchWork int
	// Seed drives address randomization.
	Seed uint64
}

// DefaultMicroParams returns parameters matching the paper's setup: a
// working set far larger than any device's LLC and marker loops long
// enough to be unambiguous in the signal.
func DefaultMicroParams(tm, cm int) MicroParams {
	return MicroParams{
		TM:         tm,
		CM:         cm,
		Pages:      4096, // 16 MB working set at 4 KB pages
		PageBytes:  4096,
		LineBytes:  64,
		BlankIters: 20000,
		CallWork:   200,
		IterWork:   3600,
		TouchWork:  60,
		Seed:       0x1234,
	}
}

// Validate checks the parameters.
func (p MicroParams) Validate() error {
	if p.TM <= 0 || p.CM <= 0 {
		return fmt.Errorf("workloads: TM=%d CM=%d must be positive", p.TM, p.CM)
	}
	if p.PageBytes <= 0 || p.LineBytes <= 0 || p.PageBytes%p.LineBytes != 0 {
		return fmt.Errorf("workloads: bad page/line geometry %d/%d", p.PageBytes, p.LineBytes)
	}
	linesPerPage := p.PageBytes / p.LineBytes
	if linesPerPage < 2 {
		return fmt.Errorf("workloads: need at least 2 lines per page")
	}
	// Line 0 of each page is used by the page touch; random accesses use
	// the rest.
	if p.TM > p.Pages*(linesPerPage-1)/2 {
		return fmt.Errorf("workloads: TM=%d too large for %d pages", p.TM, p.Pages)
	}
	if p.BlankIters < 1 || p.CallWork < 1 || p.IterWork < 1 || p.TouchWork < 0 {
		return fmt.Errorf("workloads: blank iters and work counts must be >= 1")
	}
	return nil
}

// arrayBase is where the microbenchmark's array lives; code lives lower.
const arrayBase = 0x1000_0000

// Microbenchmark builds the Fig. 6 trace:
//
//	// perform page touch
//	for (# pages_to_be_used) load(page(cache_line_0))
//	exec_blank_loop()
//	while (num_accesses != TM) {
//	    page = rand(); cache_line = rand()
//	    load(page*PAGE_SIZE + cache_line*CACHE_LINE_SIZE)
//	    if (num_accesses % CM == 0) micro_function_call()
//	    num_accesses++
//	}
//	exec_blank_loop()
//
// Every randomized access is to a distinct cache line (never line 0 of a
// page, which the page touch may have left cached), and consecutive
// addresses are serialized through the value-dependent chain register so
// each miss produces its own stall — the randomization that "defeats any
// stride-based pre-fetching".
//
// The returned stream generates the trace lazily, a loop iteration at a
// time into a reused buffer: the default-parameter trace is ~900k
// instructions (~40 MB materialized), which used to dominate simulate-e2e
// allocation. materializeMicro keeps the one-shot builder as the
// reference the stream is tested element-for-element against.
func Microbenchmark(p MicroParams) (*MicroStream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return newMicroStream(p), nil
}

// materializeMicro is the reference one-shot trace builder; MicroStream
// must produce exactly this sequence. p must be validated.
func materializeMicro(p MicroParams) []sim.Inst {
	rng := sim.NewRNG(p.Seed)
	linesPerPage := p.PageBytes / p.LineBytes

	var insts []sim.Inst
	pc := uint64(0x8000)
	emit := func(in sim.Inst) {
		in.PC = pc
		pc += 4
		insts = append(insts, in)
	}

	// --- Page touch: the first access to each page faults, and the
	// kernel's fault handling zeroes the page through the cache, so the
	// touch itself costs compute (TouchWork) but leaves the line warm —
	// which is why the paper's devices show ≈TM total misses rather than
	// TM + Pages (Table IV's microbenchmark rows).
	touchPC := pc
	for pg := 0; pg < p.Pages; pg++ {
		addr := uint64(arrayBase + pg*p.PageBytes)
		for w := 0; w < p.TouchWork; w++ {
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch + int16(w%6), Src1: regScratch + int16(w%6), Region: RegionPageTouch})
		}
		emit(sim.Inst{Op: sim.OpTouch, Addr: addr, Region: RegionPageTouch})
		emit(sim.Inst{Op: sim.OpLoad, Dst: regLoadDst, Src1: sim.RegNone, Addr: addr, Size: 4, Region: RegionPageTouch})
		emit(sim.Inst{Op: sim.OpBranch, Src1: regCounter, Taken: pg != p.Pages-1, Target: touchPC, Region: RegionPageTouch})
		pc = touchPC // loop body reuses its PCs (I$ resident)
		if pg == p.Pages-1 {
			pc = touchPC + uint64(4*(p.TouchWork+3))
		}
	}

	blankLoop := func(region uint16) {
		loopPC := pc
		for i := 0; i < p.BlankIters; i++ {
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch, Src1: regScratch, Region: region})
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch + 1, Src1: regScratch + 1, Region: region})
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regCounter, Src1: regCounter, Region: region})
			emit(sim.Inst{Op: sim.OpBranch, Src1: regCounter, Taken: i != p.BlankIters-1, Target: loopPC, Region: region})
			pc = loopPC
			if i == p.BlankIters-1 {
				pc = loopPC + 16
			}
		}
	}

	// --- Marker loop A.
	blankLoop(RegionMarkerA)

	// --- Miss section: TM unique random lines, serialized.
	used := make(map[uint64]struct{}, p.TM)
	missPC := pc
	dst := int16(regLoadDst)
	for i := 0; i < p.TM; i++ {
		var addr uint64
		for {
			pg := rng.Intn(p.Pages)
			ln := 1 + rng.Intn(linesPerPage-1)
			addr = uint64(arrayBase + pg*p.PageBytes + ln*p.LineBytes)
			if _, ok := used[addr]; !ok {
				used[addr] = struct{}{}
				break
			}
		}
		pc = missPC
		// PRNG/address computation: rand(), rand(), multiply/add — a
		// partially serial chain of IterWork instructions executed as a
		// small loop (the real rand() is warm library code, so its
		// instruction-cache footprint is tiny).
		const prngBody = 36 // instructions per inner-loop iteration
		prngIters := p.IterWork / (prngBody + 1)
		if prngIters < 1 {
			prngIters = 1
		}
		prngPC := pc
		for it := 0; it < prngIters; it++ {
			pc = prngPC
			for w := 0; w < prngBody; w++ {
				in := sim.Inst{Op: sim.OpIntALU, Dst: regScratch + int16(w%6), Src1: regScratch + int16(w%6), Region: RegionMisses}
				if w%3 == 0 {
					in.Dst = regChain
					in.Src1 = regChain
				}
				if w%23 == 0 {
					in.Op = sim.OpIntMul
				}
				emit(in)
			}
			emit(sim.Inst{Op: sim.OpBranch, Src1: regChain, Taken: it != prngIters-1, Target: prngPC, Region: RegionMisses})
		}
		pc = prngPC + uint64(4*(prngBody+1))
		emit(sim.Inst{Op: sim.OpIntALU, Dst: regAddr, Src1: regChain, Region: RegionMisses})
		emit(sim.Inst{Op: sim.OpLoad, Dst: dst, Src1: regAddr, Addr: addr, Size: 4, Region: RegionMisses})
		// Fold the loaded value into the chain: the next address depends
		// on this load, so consecutive misses cannot overlap.
		emit(sim.Inst{Op: sim.OpIntALU, Dst: regChain, Src1: regChain, Src2: dst, Region: RegionMisses})
		emit(sim.Inst{Op: sim.OpBranch, Src1: regChain, Taken: true, Target: missPC, Region: RegionMisses})

		if (i+1)%p.CM == 0 && i != p.TM-1 {
			// micro_function_call(): non-memory work separating groups.
			callPC := pc + 4
			emit(sim.Inst{Op: sim.OpCall, Taken: true, Target: callPC, Region: RegionMisses})
			for w := 0; w < p.CallWork; w++ {
				emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch + int16(w%8), Src1: regScratch + int16(w%8), Region: RegionMisses})
			}
			emit(sim.Inst{Op: sim.OpReturn, Taken: true, Target: missPC, Region: RegionMisses})
		}
	}
	pc = missPC + uint64(4*(p.IterWork+p.CallWork+16))

	// --- Marker loop B.
	blankLoop(RegionMarkerB)

	return insts
}

// Microbenchmark phases, in emission order.
const (
	microPhaseTouch = iota
	microPhaseMarkerA
	microPhaseMisses
	microPhaseMarkerB
	microPhaseDone
)

// microRefillTarget is the minimum buffered instruction count per refill;
// a refill always completes whole loop iterations, so the buffer tops out
// at roughly one miss-loop iteration (~IterWork instructions) regardless
// of TM.
const microRefillTarget = 2048

// MicroStream is the Fig. 6 microbenchmark as an incrementally generated
// instruction stream. It emits exactly the sequence materializeMicro
// builds, one loop iteration at a time, so the working set is a few
// kilobytes instead of the whole trace. Because every loop iteration of a
// phase emits the same instruction sequence up to a handful of fields
// (load addresses, the loop-exit branch), each phase is generated by
// copying a prebuilt iteration template and patching those fields.
type MicroStream struct {
	p            MicroParams
	linesPerPage int

	rng  *sim.RNG
	used map[uint64]struct{}

	phase int
	// iter is the next loop iteration of the current phase: the page
	// index, blank-loop iteration, or miss index.
	iter int
	// pc is the next instruction address; loopPC is the current phase's
	// loop head (touchPC / blank loopPC / missPC).
	pc, loopPC uint64

	// tmpl is the current phase's per-iteration instruction template
	// (PCs baked in — loop bodies reuse their PCs); callTmpl is the
	// micro-function-call block appended after every CM-th miss.
	tmpl      []sim.Inst
	callTmpl  []sim.Inst
	tmplPhase int

	buf []sim.Inst
	pos int
}

// newMicroStream assumes p is validated.
func newMicroStream(p MicroParams) *MicroStream {
	s := &MicroStream{p: p, linesPerPage: p.PageBytes / p.LineBytes}
	s.Reset()
	return s
}

// Reset rewinds the stream to the first instruction.
func (s *MicroStream) Reset() {
	s.rng = sim.NewRNG(s.p.Seed)
	s.used = make(map[uint64]struct{}, s.p.TM)
	s.phase = microPhaseTouch
	s.iter = 0
	s.pc = 0x8000
	s.loopPC = s.pc
	s.tmplPhase = -1
	s.buf = s.buf[:0]
	s.pos = 0
}

// Len returns the total trace length in instructions.
func (s *MicroStream) Len() int {
	p := s.p
	prngIters := p.IterWork / 37
	if prngIters < 1 {
		prngIters = 1
	}
	calls := p.TM / p.CM
	if p.TM%p.CM == 0 {
		// The group ending at the last miss emits no trailing call.
		calls--
	}
	return p.Pages*(p.TouchWork+3) +
		2*p.BlankIters*4 +
		p.TM*(prngIters*37+4) +
		calls*(p.CallWork+2)
}

// Next implements sim.Stream.
func (s *MicroStream) Next(in *sim.Inst) bool {
	if s.pos >= len(s.buf) {
		if !s.refill() {
			return false
		}
	}
	*in = s.buf[s.pos]
	s.pos++
	return true
}

// NextBlock implements sim.BlockStream: the unread remainder of the
// current generation buffer, refilled when empty.
func (s *MicroStream) NextBlock() []sim.Inst {
	if s.pos >= len(s.buf) {
		if !s.refill() {
			return nil
		}
	}
	out := s.buf[s.pos:]
	s.pos = len(s.buf)
	return out
}

// refill regenerates the buffer with at least microRefillTarget
// instructions (whole iterations only).
func (s *MicroStream) refill() bool {
	s.buf = s.buf[:0]
	s.pos = 0
	for len(s.buf) < microRefillTarget && s.phase != microPhaseDone {
		s.emitIteration()
	}
	return len(s.buf) > 0
}

// buildTemplate constructs the current phase's per-iteration template at
// s.loopPC, using the same emission code paths as materializeMicro (with
// the loop-continuing branch shape; the final iteration's exit branch is
// patched in emitIteration).
func (s *MicroStream) buildTemplate() {
	p := s.p
	s.tmpl = s.tmpl[:0]
	s.callTmpl = s.callTmpl[:0]
	s.tmplPhase = s.phase
	pc := s.loopPC
	emit := func(in sim.Inst) {
		in.PC = pc
		pc += 4
		s.tmpl = append(s.tmpl, in)
	}
	switch s.phase {
	case microPhaseTouch:
		for w := 0; w < p.TouchWork; w++ {
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch + int16(w%6), Src1: regScratch + int16(w%6), Region: RegionPageTouch})
		}
		emit(sim.Inst{Op: sim.OpTouch, Region: RegionPageTouch})
		emit(sim.Inst{Op: sim.OpLoad, Dst: regLoadDst, Src1: sim.RegNone, Size: 4, Region: RegionPageTouch})
		emit(sim.Inst{Op: sim.OpBranch, Src1: regCounter, Taken: true, Target: s.loopPC, Region: RegionPageTouch})
	case microPhaseMarkerA, microPhaseMarkerB:
		region := RegionMarkerA
		if s.phase == microPhaseMarkerB {
			region = RegionMarkerB
		}
		emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch, Src1: regScratch, Region: region})
		emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch + 1, Src1: regScratch + 1, Region: region})
		emit(sim.Inst{Op: sim.OpIntALU, Dst: regCounter, Src1: regCounter, Region: region})
		emit(sim.Inst{Op: sim.OpBranch, Src1: regCounter, Taken: true, Target: s.loopPC, Region: region})
	case microPhaseMisses:
		const prngBody = 36
		prngIters := p.IterWork / (prngBody + 1)
		if prngIters < 1 {
			prngIters = 1
		}
		prngPC := s.loopPC
		for it := 0; it < prngIters; it++ {
			pc = prngPC
			for w := 0; w < prngBody; w++ {
				in := sim.Inst{Op: sim.OpIntALU, Dst: regScratch + int16(w%6), Src1: regScratch + int16(w%6), Region: RegionMisses}
				if w%3 == 0 {
					in.Dst = regChain
					in.Src1 = regChain
				}
				if w%23 == 0 {
					in.Op = sim.OpIntMul
				}
				emit(in)
			}
			emit(sim.Inst{Op: sim.OpBranch, Src1: regChain, Taken: it != prngIters-1, Target: prngPC, Region: RegionMisses})
		}
		pc = prngPC + uint64(4*(prngBody+1))
		dst := int16(regLoadDst)
		emit(sim.Inst{Op: sim.OpIntALU, Dst: regAddr, Src1: regChain, Region: RegionMisses})
		emit(sim.Inst{Op: sim.OpLoad, Dst: dst, Src1: regAddr, Size: 4, Region: RegionMisses})
		emit(sim.Inst{Op: sim.OpIntALU, Dst: regChain, Src1: regChain, Src2: dst, Region: RegionMisses})
		emit(sim.Inst{Op: sim.OpBranch, Src1: regChain, Taken: true, Target: s.loopPC, Region: RegionMisses})
		// micro_function_call() block (appended after every CM-th miss).
		callPC := pc + 4
		call := func(in sim.Inst) {
			in.PC = pc
			pc += 4
			s.callTmpl = append(s.callTmpl, in)
		}
		call(sim.Inst{Op: sim.OpCall, Taken: true, Target: callPC, Region: RegionMisses})
		for w := 0; w < p.CallWork; w++ {
			call(sim.Inst{Op: sim.OpIntALU, Dst: regScratch + int16(w%8), Src1: regScratch + int16(w%8), Region: RegionMisses})
		}
		call(sim.Inst{Op: sim.OpReturn, Taken: true, Target: s.loopPC, Region: RegionMisses})
	}
}

// emitIteration appends the current phase's next loop iteration (template
// copy plus per-iteration patches) and advances the phase state machine,
// producing exactly materializeMicro's sequence.
func (s *MicroStream) emitIteration() {
	p := s.p
	if s.tmplPhase != s.phase {
		s.buildTemplate()
	}
	base := len(s.buf)
	s.buf = append(s.buf, s.tmpl...)
	switch s.phase {
	case microPhaseTouch:
		addr := uint64(arrayBase + s.iter*p.PageBytes)
		s.buf[base+p.TouchWork].Addr = addr   // OpTouch
		s.buf[base+p.TouchWork+1].Addr = addr // OpLoad
		s.iter++
		if s.iter == p.Pages {
			s.buf[len(s.buf)-1].Taken = false // loop exit
			s.pc = s.loopPC + uint64(4*(p.TouchWork+3))
			s.phase = microPhaseMarkerA
			s.iter = 0
			s.loopPC = s.pc
		}
	case microPhaseMarkerA, microPhaseMarkerB:
		s.iter++
		if s.iter == p.BlankIters {
			s.buf[len(s.buf)-1].Taken = false // loop exit
			s.pc = s.loopPC + 16
			s.iter = 0
			if s.phase == microPhaseMarkerA {
				s.phase = microPhaseMisses
			} else {
				s.phase = microPhaseDone
			}
			s.loopPC = s.pc
		}
	case microPhaseMisses:
		i := s.iter
		var addr uint64
		for {
			pg := s.rng.Intn(p.Pages)
			ln := 1 + s.rng.Intn(s.linesPerPage-1)
			addr = uint64(arrayBase + pg*p.PageBytes + ln*p.LineBytes)
			if _, ok := s.used[addr]; !ok {
				s.used[addr] = struct{}{}
				break
			}
		}
		s.buf[len(s.buf)-3].Addr = addr // the chained OpLoad
		if (i+1)%p.CM == 0 && i != p.TM-1 {
			s.buf = append(s.buf, s.callTmpl...)
		}
		s.iter++
		if s.iter == p.TM {
			s.pc = s.loopPC + uint64(4*(p.IterWork+p.CallWork+16))
			s.phase = microPhaseMarkerB
			s.iter = 0
			s.loopPC = s.pc
		}
	}
}

// MicroTMCMGrid returns the paper's Table II/III parameter grid:
// (TM, CM) ∈ {(256,1), (256,5), (1024,10), (4096,50)}.
func MicroTMCMGrid() []MicroParams {
	return []MicroParams{
		DefaultMicroParams(256, 1),
		DefaultMicroParams(256, 5),
		DefaultMicroParams(1024, 10),
		DefaultMicroParams(4096, 50),
	}
}
