package workloads

// Boot-sequence regions (Fig. 13): the paper profiles the IoT device's
// boot "from its very beginning, even before the processor's performance
// monitoring features are initialized".
const (
	RegionBootROM       uint16 = 50
	RegionBootDecomp    uint16 = 51
	RegionBootKernel    uint16 = 52
	RegionBootDrivers   uint16 = 53
	RegionBootFS        uint16 = 54
	RegionBootUserspace uint16 = 55
)

// BootProgram models a device boot as a phased workload whose miss rate
// varies strongly over time, which is all Fig. 13 requires: an early
// ROM/loader burst (cold caches, heavy code and data misses), a
// decompression phase (streaming, moderate misses), kernel init (bursty),
// driver probing (pointer-heavy, high miss rate), filesystem mount
// (metadata walks), and a quieter userspace start. scale ≈ dynamic
// instructions in millions; seed differentiates the paper's "two distinct
// runs", whose coarse structure repeats while fine detail differs.
func BootProgram(scale float64, seed uint64) *Program {
	n := func(m float64) int64 {
		v := int64(m * scale * 1e6)
		if v < 1000 {
			v = 1000
		}
		return v
	}
	return &Program{
		Name: "boot",
		Seed: seed,
		Phases: []Phase{
			{
				Name: "rom_loader", Region: RegionBootROM, Insts: n(0.06),
				LoadFrac: 0.30, StoreFrac: 0.12,
				LoopLen: 30, CodeBytes: 48 * kib,
				WSBytes: 6 * mib, HotBytes: 32 * kib, ColdFrac: 0.004,
				StrideBytes: 64, StreamFrac: 0.03,
				DepFrac: 0.4,
			},
			{
				Name: "decompress", Region: RegionBootDecomp, Insts: n(0.22),
				LoadFrac: 0.28, StoreFrac: 0.14,
				LoopLen: 40, CodeBytes: 10 * kib,
				WSBytes: 10 * mib, HotBytes: 48 * kib, ColdFrac: 0.0008,
				StrideBytes: 8, StreamFrac: 0.06,
				DepFrac: 0.35,
			},
			{
				Name: "kernel_init", Region: RegionBootKernel, Insts: n(0.18),
				LoadFrac: 0.24, StoreFrac: 0.10,
				LoopLen: 64, CodeBytes: 64 * kib,
				WSBytes: 4 * mib, HotBytes: 64 * kib, ColdFrac: 0.0012,
				DepFrac: 0.4,
			},
			{
				Name: "driver_probe", Region: RegionBootDrivers, Insts: n(0.20),
				LoadFrac: 0.30, StoreFrac: 0.08,
				LoopLen: 36, CodeBytes: 80 * kib,
				WSBytes: 8 * mib, HotBytes: 48 * kib, ColdFrac: 0.0022,
				PointerChase: true,
				DepFrac:      0.5,
			},
			{
				Name: "fs_mount", Region: RegionBootFS, Insts: n(0.14),
				LoadFrac: 0.27, StoreFrac: 0.09,
				LoopLen: 48, CodeBytes: 32 * kib,
				WSBytes: 5 * mib, HotBytes: 64 * kib, ColdFrac: 0.0010,
				DepFrac: 0.4,
			},
			{
				Name: "userspace", Region: RegionBootUserspace, Insts: n(0.20),
				LoadFrac: 0.22, StoreFrac: 0.07,
				LoopLen: 72, CodeBytes: 40 * kib,
				WSBytes: 1 * mib, HotBytes: 96 * kib, ColdFrac: 0.0001,
				DepFrac: 0.35,
			},
		},
	}
}
