package workloads

import (
	"testing"

	"emprof/internal/sim"
)

func drain(s sim.Stream) []sim.Inst {
	var out []sim.Inst
	var in sim.Inst
	for s.Next(&in) {
		out = append(out, in)
	}
	return out
}

func TestMicroParamsValidation(t *testing.T) {
	good := DefaultMicroParams(256, 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	muts := []func(*MicroParams){
		func(p *MicroParams) { p.TM = 0 },
		func(p *MicroParams) { p.CM = 0 },
		func(p *MicroParams) { p.LineBytes = 48 },
		func(p *MicroParams) { p.TM = p.Pages * 64 },
		func(p *MicroParams) { p.BlankIters = 0 },
		func(p *MicroParams) { p.IterWork = 0 },
	}
	for i, mut := range muts {
		p := DefaultMicroParams(256, 4)
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestMicrobenchmarkStructure(t *testing.T) {
	p := DefaultMicroParams(64, 8)
	p.BlankIters = 100
	p.Pages = 512
	st, err := Microbenchmark(p)
	if err != nil {
		t.Fatal(err)
	}
	insts := drain(st)

	var loads, touches, calls, rets int
	lines := make(map[uint64]bool)
	regionSeen := map[uint16]bool{}
	for _, in := range insts {
		regionSeen[in.Region] = true
		switch in.Op {
		case sim.OpTouch:
			touches++
		case sim.OpLoad:
			if in.Region == RegionMisses {
				loads++
				line := in.Addr &^ 63
				if lines[line] {
					t.Fatalf("repeated cache line %#x", line)
				}
				lines[line] = true
				if in.Addr%64 == 0 && (in.Addr/4096)%1 == 0 && (in.Addr%4096) == 0 {
					t.Fatalf("miss access hit page line 0: %#x", in.Addr)
				}
			}
		case sim.OpCall:
			calls++
		case sim.OpReturn:
			rets++
		}
	}
	if loads != p.TM {
		t.Fatalf("miss-section loads %d, want TM=%d", loads, p.TM)
	}
	if touches != p.Pages {
		t.Fatalf("touches %d, want %d pages", touches, p.Pages)
	}
	// One micro-function call per full CM group except after the last.
	wantCalls := p.TM/p.CM - 1
	if calls != wantCalls || rets != wantCalls {
		t.Fatalf("calls/rets %d/%d, want %d", calls, rets, wantCalls)
	}
	for _, r := range []uint16{RegionPageTouch, RegionMarkerA, RegionMisses, RegionMarkerB} {
		if !regionSeen[r] {
			t.Fatalf("region %d missing", r)
		}
	}
}

func TestMicrobenchmarkDeterministic(t *testing.T) {
	p := DefaultMicroParams(32, 4)
	p.BlankIters = 10
	p.Pages = 256
	a, _ := Microbenchmark(p)
	b, _ := Microbenchmark(p)
	ia, ib := drain(a), drain(b)
	if len(ia) != len(ib) {
		t.Fatal("lengths differ")
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestMicroTMCMGrid(t *testing.T) {
	grid := MicroTMCMGrid()
	if len(grid) != 4 {
		t.Fatalf("grid size %d, want 4", len(grid))
	}
	wantTM := []int{256, 256, 1024, 4096}
	wantCM := []int{1, 5, 10, 50}
	for i, mp := range grid {
		if mp.TM != wantTM[i] || mp.CM != wantCM[i] {
			t.Fatalf("grid[%d] = TM=%d CM=%d", i, mp.TM, mp.CM)
		}
	}
}

func TestSPECProgramsBuild(t *testing.T) {
	progs, err := AllSPECPrograms(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 10 {
		t.Fatalf("%d programs, want 10", len(progs))
	}
	for _, p := range progs {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
		if p.TotalInsts() <= 0 {
			t.Errorf("%s has no instruction budget", p.Name)
		}
	}
	if _, err := SPECProgram("doom", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := SPECProgram("mcf", 0); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestSPECStreamMix(t *testing.T) {
	p, err := SPECProgram("bzip2", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	insts := drain(p.Stream())
	var loads, stores, branches, total int
	for _, in := range insts {
		if in.Op == sim.OpTouch {
			continue // warm-up prefix
		}
		total++
		switch in.Op {
		case sim.OpLoad:
			loads++
		case sim.OpStore:
			stores++
		case sim.OpBranch:
			branches++
		}
	}
	ph := p.Phases[0]
	lf := float64(loads) / float64(total)
	sf := float64(stores) / float64(total)
	if lf < ph.LoadFrac*0.7 || lf > ph.LoadFrac*1.3 {
		t.Fatalf("load fraction %v, want ~%v", lf, ph.LoadFrac)
	}
	if sf < ph.StoreFrac*0.7 || sf > ph.StoreFrac*1.3 {
		t.Fatalf("store fraction %v, want ~%v", sf, ph.StoreFrac)
	}
	// Branches close loops of LoopLen instructions.
	wantBF := 1.0 / float64(ph.LoopLen)
	if bf := float64(branches) / float64(total); bf < wantBF*0.6 || bf > wantBF*1.6 {
		t.Fatalf("branch fraction %v, want ~%v", bf, wantBF)
	}
}

func TestSPECStreamDeterministic(t *testing.T) {
	p1, _ := SPECProgram("mcf", 0.02)
	p2, _ := SPECProgram("mcf", 0.02)
	a, b := drain(p1.Stream()), drain(p2.Stream())
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestSPECWarmupPrefix(t *testing.T) {
	p, _ := SPECProgram("vpr", 0.02)
	insts := drain(p.Stream())
	if insts[0].Op != sim.OpTouch {
		t.Fatal("stream must start with warm-up touches")
	}
	// Warm-up covers code + hot set.
	var touches int
	for _, in := range insts {
		if in.Op == sim.OpTouch {
			touches++
		}
	}
	ph := p.Phases[0]
	want := ph.CodeBytes/64 + int(ph.HotBytes/64)
	if touches != want {
		t.Fatalf("touches %d, want %d", touches, want)
	}
}

func TestParserHasThreeRegions(t *testing.T) {
	p, _ := SPECProgram("parser", 0.05)
	insts := drain(p.Stream())
	seen := map[uint16]int{}
	for _, in := range insts {
		seen[in.Region]++
	}
	for _, r := range []uint16{RegionReadDictionary, RegionInitRandtable, RegionBatchProcess} {
		if seen[r] == 0 {
			t.Fatalf("parser region %d empty", r)
		}
	}
	if seen[RegionBatchProcess] < seen[RegionInitRandtable] {
		t.Fatal("batch_process must dominate parser's instruction count")
	}
}

func TestBootProgramPhases(t *testing.T) {
	p := BootProgram(0.2, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) != 6 {
		t.Fatalf("boot phases %d, want 6", len(p.Phases))
	}
	// Distinct seeds produce different streams (two boots differ).
	a := drain(BootProgram(0.05, 1).Stream())
	b := drain(BootProgram(0.05, 2).Stream())
	diff := false
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different boot seeds gave identical traces")
	}
}

func TestAccessKernelLevels(t *testing.T) {
	for _, lvl := range []MissLevel{MissNone, MissL1, MissLLC} {
		p := DefaultAccessKernelParams(lvl, 32<<10, 256<<10)
		p.BlankIters = 10
		st, err := AccessKernel(p)
		if err != nil {
			t.Fatalf("level %d: %v", lvl, err)
		}
		insts := drain(st)
		var accessLoads int
		for _, in := range insts {
			if in.Op == sim.OpLoad && in.Region == RegionKernelAccess {
				accessLoads++
			}
		}
		if accessLoads != p.Accesses {
			t.Fatalf("level %d: %d access loads, want %d", lvl, accessLoads, p.Accesses)
		}
	}
	bad := DefaultAccessKernelParams(MissLLC, 32<<10, 256<<10)
	bad.Accesses = 0
	if _, err := AccessKernel(bad); err == nil {
		t.Fatal("zero accesses accepted")
	}
}

func TestOverlapKernel(t *testing.T) {
	st, err := OverlapKernel(OverlapKernelParams{
		Groups: 4, GroupSize: 6, GapWork: 50, LineBytes: 64, LLCBytes: 256 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	insts := drain(st)
	var loads int
	addrs := map[uint64]bool{}
	for _, in := range insts {
		if in.Op == sim.OpLoad {
			loads++
			if addrs[in.Addr] {
				t.Fatalf("repeated address %#x", in.Addr)
			}
			addrs[in.Addr] = true
		}
	}
	if loads != 24 {
		t.Fatalf("loads %d, want 24", loads)
	}
	if _, err := OverlapKernel(OverlapKernelParams{}); err == nil {
		t.Fatal("empty params accepted")
	}
}

func TestDualMissKernel(t *testing.T) {
	st, err := DualMissKernel(5, 20, 64, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	insts := drain(st)
	var jumps, loads int
	for _, in := range insts {
		if in.Op == sim.OpBranch && in.Taken {
			jumps++
		}
		if in.Op == sim.OpLoad {
			loads++
		}
	}
	if jumps != 5 || loads != 5 {
		t.Fatalf("jumps=%d loads=%d, want 5/5", jumps, loads)
	}
}

func TestRefreshKernel(t *testing.T) {
	st, err := RefreshKernel(10, 5, 64, 256<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	insts := drain(st)
	var loads int
	for _, in := range insts {
		if in.Op == sim.OpLoad {
			loads++
		}
	}
	if loads != 10 {
		t.Fatalf("loads %d, want 10", loads)
	}
	if _, err := RefreshKernel(0, 5, 64, 1024, 1); err == nil {
		t.Fatal("zero misses accepted")
	}
}
