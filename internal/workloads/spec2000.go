package workloads

import "fmt"

// Region identifiers for the parser attribution experiment (Table V).
const (
	RegionReadDictionary uint16 = 10
	RegionInitRandtable  uint16 = 11
	RegionBatchProcess   uint16 = 12
)

// kib/mib improve the readability of the parameter tables below.
const (
	kib = 1 << 10
	mib = 1 << 20
)

// SPECNames lists the ten SPEC CPU2000 benchmarks of Tables III/IV in the
// paper's row order.
var SPECNames = []string{
	"ammp", "bzip2", "crafty", "equake", "gzip",
	"mcf", "parser", "twolf", "vortex", "vpr",
}

// SPECProgram returns the statistical reproduction of one SPEC CPU2000
// benchmark, scaled so the dynamic instruction count is about
// scale × 1e6. The parameters encode each benchmark's published memory
// character: mcf pointer-chases a large sparse structure, bzip2/gzip/
// equake stream (and therefore prefetch well), crafty/vpr are mostly
// cache-resident, vortex stresses the instruction cache, parser
// alternates a dictionary-build phase with a miss-heavy batch phase.
func SPECProgram(name string, scale float64) (*Program, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("workloads: scale %v <= 0", scale)
	}
	n := func(millions float64) int64 { return int64(millions * scale * 1e6) }
	var phases []Phase
	switch name {
	case "ammp":
		phases = []Phase{{
			Name: "main", Region: 20, Insts: n(1.0),
			LoadFrac: 0.24, StoreFrac: 0.08, FPFrac: 0.55,
			LoopLen: 64, CodeBytes: 16 * kib,
			WSBytes: 3 * mib, HotBytes: 24 * kib, ColdFrac: 0.0007,
			WarmBytes: 1536 * kib, WarmFrac: 0.0016,
			DepFrac: 0.55,
		}}
	case "bzip2":
		phases = []Phase{{
			Name: "compress", Region: 21, Insts: n(1.0),
			LoadFrac: 0.30, StoreFrac: 0.12, FPFrac: 0,
			LoopLen: 48, CodeBytes: 12 * kib,
			WSBytes: 8 * mib, HotBytes: 24 * kib, ColdFrac: 0.00005,
			WarmBytes: 1536 * kib, WarmFrac: 0.0008,
			StrideBytes: 8, StreamFrac: 0.014,
			DepFrac: 0.35,
		}}
	case "crafty":
		phases = []Phase{{
			Name: "search", Region: 22, Insts: n(1.0),
			LoadFrac: 0.27, StoreFrac: 0.07, FPFrac: 0,
			LoopLen: 90, CodeBytes: 56 * kib,
			WSBytes: 640 * kib, HotBytes: 24 * kib, ColdFrac: 0.00002,
			WarmBytes: 600 * kib, WarmFrac: 0.0004,
			DepFrac: 0.30,
		}}
	case "equake":
		phases = []Phase{{
			Name: "smvp", Region: 23, Insts: n(1.0),
			LoadFrac: 0.33, StoreFrac: 0.09, FPFrac: 0.6,
			LoopLen: 40, CodeBytes: 10 * kib,
			WSBytes: 8 * mib, HotBytes: 24 * kib, ColdFrac: 0.00008,
			WarmBytes: 1536 * kib, WarmFrac: 0.0006,
			StrideBytes: 16, StreamFrac: 0.012,
			DepFrac: 0.45,
		}}
	case "gzip":
		phases = []Phase{{
			Name: "deflate", Region: 24, Insts: n(1.0),
			LoadFrac: 0.26, StoreFrac: 0.10, FPFrac: 0,
			LoopLen: 44, CodeBytes: 14 * kib,
			WSBytes: 1536 * kib, HotBytes: 24 * kib, ColdFrac: 0.00002,
			WarmBytes: 1200 * kib, WarmFrac: 0.0004,
			StrideBytes: 4, StreamFrac: 0.010,
			DepFrac: 0.35,
		}}
	case "mcf":
		phases = []Phase{{
			Name: "simplex", Region: 25, Insts: n(1.0),
			LoadFrac: 0.31, StoreFrac: 0.06, FPFrac: 0,
			LoopLen: 36, CodeBytes: 8 * kib,
			WSBytes: 12 * mib, HotBytes: 24 * kib, ColdFrac: 0.00025,
			WarmBytes: 2 * mib, WarmFrac: 0.0002,
			PointerChase: true,
			DepFrac:      0.55,
		}}
	case "parser":
		phases = []Phase{
			{
				Name: "read_dictionary", Region: RegionReadDictionary, Insts: n(0.22),
				LoadFrac: 0.27, StoreFrac: 0.10, FPFrac: 0,
				LoopLen: 36, CodeBytes: 12 * kib,
				WSBytes: 4 * mib, HotBytes: 24 * kib, ColdFrac: 0.0001,
				WarmBytes: 1 * mib, WarmFrac: 0.0002,
				StrideBytes: 8, StreamFrac: 0.004,
				DepFrac: 0.40,
			},
			{
				Name: "init_randtable", Region: RegionInitRandtable, Insts: n(0.10),
				LoadFrac: 0.12, StoreFrac: 0.14, FPFrac: 0,
				LoopLen: 88, CodeBytes: 4 * kib,
				WSBytes: 384 * kib, HotBytes: 24 * kib, ColdFrac: 0.0001,
				StrideBytes: 4, StreamFrac: 0.02,
				DepFrac: 0.30,
			},
			{
				Name: "batch_process", Region: RegionBatchProcess, Insts: n(0.68),
				LoadFrac: 0.30, StoreFrac: 0.09, FPFrac: 0,
				LoopLen: 56, CodeBytes: 20 * kib,
				WSBytes: 8 * mib, HotBytes: 24 * kib, ColdFrac: 0.0013,
				WarmBytes: 3 * mib, WarmFrac: 0.0008,
				DepFrac: 0.50,
			},
		}
	case "twolf":
		phases = []Phase{{
			Name: "place", Region: 27, Insts: n(1.0),
			LoadFrac: 0.25, StoreFrac: 0.08, FPFrac: 0.1,
			LoopLen: 70, CodeBytes: 24 * kib,
			WSBytes: 1200 * kib, HotBytes: 24 * kib, ColdFrac: 0.00003,
			WarmBytes: 1 * mib, WarmFrac: 0.0006,
			DepFrac: 0.40,
		}}
	case "vortex":
		phases = []Phase{{
			Name: "oodb", Region: 28, Insts: n(1.0),
			LoadFrac: 0.28, StoreFrac: 0.11, FPFrac: 0,
			LoopLen: 120, CodeBytes: 96 * kib,
			WSBytes: 2 * mib, HotBytes: 24 * kib, ColdFrac: 0.00004,
			WarmBytes: 1800 * kib, WarmFrac: 0.0005,
			DepFrac: 0.30,
		}}
	case "vpr":
		phases = []Phase{{
			Name: "route", Region: 29, Insts: n(1.0),
			LoadFrac: 0.24, StoreFrac: 0.07, FPFrac: 0.25,
			LoopLen: 52, CodeBytes: 18 * kib,
			WSBytes: 448 * kib, HotBytes: 24 * kib, ColdFrac: 0.00001,
			WarmBytes: 448 * kib, WarmFrac: 0.00012,
			DepFrac: 0.40,
		}}
	default:
		return nil, fmt.Errorf("workloads: unknown SPEC benchmark %q", name)
	}
	p := &Program{Name: name, Phases: phases, Seed: hashName(name)}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// hashName derives a stable per-benchmark seed.
func hashName(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// AllSPECPrograms returns all ten benchmarks at the given scale.
func AllSPECPrograms(scale float64) ([]*Program, error) {
	out := make([]*Program, 0, len(SPECNames))
	for _, n := range SPECNames {
		p, err := SPECProgram(n, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
