package workloads

import (
	"fmt"

	"emprof/internal/sim"
)

// Phase is one execution phase of a statistical workload. The generator
// draws an instruction mix and an address stream with the phase's
// locality character; because EMPROF observes only the signal, matching a
// benchmark's *memory behaviour* (miss volume, grouping, overlap, and the
// compute between misses) reproduces what the paper measured without the
// original binaries.
type Phase struct {
	// Name and Region label the phase for attribution experiments.
	Name   string
	Region uint16
	// Insts is the dynamic instruction budget of the phase.
	Insts int64
	// LoadFrac and StoreFrac are the fractions of loads and stores.
	LoadFrac, StoreFrac float64
	// FPFrac is the fraction of non-memory instructions that are FP.
	FPFrac float64
	// LoopLen is the instruction count of the phase's dominant loop; the
	// generator emits a backward taken branch with this period, which
	// sets the code's spectral signature.
	LoopLen int
	// CodeBytes is the code footprint; larger-than-L1I footprints cause
	// instruction misses (vortex, crafty).
	CodeBytes int
	// WSBytes is the total data working set. Most accesses go to a hot
	// subset of HotBytes with strong spatial locality (L1-friendly);
	// StreamFrac of accesses walk the working set sequentially with
	// StrideBytes (cheap, row-buffer-friendly, prefetchable misses —
	// bzip2/gzip/equake); ColdFrac of accesses hit a random line in the
	// full working set (expensive, row-missing LLC misses — mcf/ammp/
	// parser). The remainder (1 − StreamFrac − ColdFrac) is hot.
	WSBytes  int64
	HotBytes int64
	ColdFrac float64
	// WarmBytes/WarmFrac define a middle locality tier: random lines in a
	// region of WarmBytes accessed with probability WarmFrac. Sized
	// between the small and large LLCs, this tier produces the capacity
	// misses that differentiate the devices: it thrashes a 256 KB LLC but
	// becomes resident in 1 MB.
	WarmBytes int64
	WarmFrac  float64
	// PointerChase serializes cold loads (each address depends on the
	// previous loaded value), the mcf pattern: no MLP, full-latency
	// stalls.
	PointerChase bool
	StrideBytes  int64
	StreamFrac   float64
	// DepFrac is the probability an ALU instruction depends on the
	// previous instruction's result (limits ILP).
	DepFrac float64
}

// Validate checks the phase.
func (p Phase) Validate() error {
	if p.Insts <= 0 {
		return fmt.Errorf("workloads: phase %s: no instructions", p.Name)
	}
	if p.LoadFrac < 0 || p.StoreFrac < 0 || p.LoadFrac+p.StoreFrac > 0.9 {
		return fmt.Errorf("workloads: phase %s: bad memory fractions", p.Name)
	}
	if p.LoopLen < 4 {
		return fmt.Errorf("workloads: phase %s: loop length %d < 4", p.Name, p.LoopLen)
	}
	if p.WSBytes < 4096 {
		return fmt.Errorf("workloads: phase %s: working set too small", p.Name)
	}
	if p.HotBytes <= 0 || p.HotBytes > p.WSBytes {
		return fmt.Errorf("workloads: phase %s: bad hot-set size", p.Name)
	}
	if p.StreamFrac < 0 || p.ColdFrac < 0 || p.WarmFrac < 0 ||
		p.StreamFrac+p.ColdFrac+p.WarmFrac > 1 {
		return fmt.Errorf("workloads: phase %s: bad stream/cold/warm fractions", p.Name)
	}
	if p.WarmFrac > 0 && (p.WarmBytes <= 0 || p.WarmBytes > p.WSBytes) {
		return fmt.Errorf("workloads: phase %s: bad warm-set size", p.Name)
	}
	if p.StreamFrac > 0 && p.StrideBytes <= 0 {
		return fmt.Errorf("workloads: phase %s: stream fraction without stride", p.Name)
	}
	if p.CodeBytes < 64 {
		return fmt.Errorf("workloads: phase %s: code footprint too small", p.Name)
	}
	return nil
}

// Program is a named multi-phase workload.
type Program struct {
	Name   string
	Phases []Phase
	Seed   uint64
}

// Validate checks all phases.
func (p *Program) Validate() error {
	if len(p.Phases) == 0 {
		return fmt.Errorf("workloads: program %s has no phases", p.Name)
	}
	for _, ph := range p.Phases {
		if err := ph.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalInsts returns the program's dynamic instruction budget.
func (p *Program) TotalInsts() int64 {
	var n int64
	for _, ph := range p.Phases {
		n += ph.Insts
	}
	return n
}

// Stream returns a fresh generator stream over the program. Each call
// restarts from the seed, so repeated runs are identical.
func (p *Program) Stream() sim.Stream {
	return &programStream{prog: p, rng: sim.NewRNG(p.Seed)}
}

// programStream generates instructions lazily.
type programStream struct {
	prog    *Program
	rng     *sim.RNG
	phase   int
	emitted int64

	// per-phase state
	pcBase    uint64
	pcOff     uint64
	loopStart uint64
	loopPos   int
	streamPos uint64
	streamRun int
	hotPos    uint64
	lastDst   int16
	dstRot    int16
	chainReg  int16
	// warm-up touch emission at phase entry
	warmAddr uint64
	warmEnd  uint64
	warmCode bool
}

const specArrayBase = 0x4000_0000
const specCodeBase = 0x0010_0000

func (s *programStream) Next(inst *sim.Inst) bool {
	for {
		if s.phase >= len(s.prog.Phases) {
			return false
		}
		ph := &s.prog.Phases[s.phase]
		if s.emitted >= ph.Insts {
			s.phase++
			s.emitted = 0
			s.loopPos = 0
			s.streamPos = 0
			continue
		}
		if s.emitted == 0 {
			// Phase entry: place code at a phase-specific base and start
			// warming the hot set (a real program has been running before
			// the profiled window: its hot data and code are resident, so
			// cold-start compulsory misses must not swamp the phase's
			// steady-state behaviour).
			s.pcBase = specCodeBase + uint64(s.phase)<<20
			s.pcOff = 0
			s.loopStart = s.pcBase
			s.chainReg = regChain
			s.lastDst = sim.RegNone
			s.warmAddr = uint64(specArrayBase) + uint64(ph.Region)<<32
			s.warmEnd = s.warmAddr + uint64(ph.HotBytes)
			s.warmCode = true
		}
		if s.warmCode {
			// Warm the code footprint into the LLC first.
			*inst = sim.Inst{PC: s.pcBase, Op: sim.OpTouch, Addr: s.pcBase + s.pcOff, Region: ph.Region}
			s.pcOff += 64
			if s.pcOff >= uint64(ph.CodeBytes) {
				s.warmCode = false
				s.pcOff = 0
			}
			s.emitted++
			return true
		}
		if s.warmAddr < s.warmEnd {
			*inst = sim.Inst{PC: s.pcBase, Op: sim.OpTouch, Addr: s.warmAddr, Region: ph.Region}
			s.warmAddr += 64
			s.emitted++
			return true
		}
		s.generate(ph, inst)
		s.emitted++
		return true
	}
}

func (s *programStream) nextPC(ph *Phase) uint64 {
	pc := s.pcBase + s.pcOff%uint64(ph.CodeBytes)
	s.pcOff += 4
	return pc
}

func (s *programStream) generate(ph *Phase, inst *sim.Inst) {
	*inst = sim.Inst{Region: ph.Region, Dst: sim.RegNone, Src1: sim.RegNone, Src2: sim.RegNone}
	r := s.rng

	// Loop-closing branch with the phase's period.
	s.loopPos++
	if s.loopPos >= ph.LoopLen {
		s.loopPos = 0
		inst.PC = s.nextPC(ph)
		inst.Op = sim.OpBranch
		inst.Taken = true
		// Mostly iterate the same loop; occasionally move to another code
		// block, exercising the code footprint.
		if r.Float64() < 0.08 {
			s.loopStart = s.pcBase + uint64(r.Intn(ph.CodeBytes/4))*4
		}
		inst.Target = s.loopStart
		s.pcOff = s.loopStart - s.pcBase
		return
	}

	inst.PC = s.nextPC(ph)
	// Real loop bodies have structure: address arithmetic and loads up
	// front, dependent compute at the back. Concentrating the memory ops
	// in the first part of the loop and the serial compute in the rest
	// modulates the core's activity at the loop frequency, giving each
	// phase the spectral signature that Spectral Profiling-style
	// attribution recognises (paper Fig. 14).
	frontHalf := s.loopPos*2 < ph.LoopLen
	loadFrac, storeFrac := ph.LoadFrac, ph.StoreFrac
	if frontHalf {
		loadFrac, storeFrac = loadFrac*1.7, storeFrac*1.7
	} else {
		loadFrac, storeFrac = loadFrac*0.3, storeFrac*0.3
	}
	u := r.Float64()
	switch {
	case u < loadFrac:
		inst.Op = sim.OpLoad
		var cold bool
		var stream bool
		inst.Addr, cold, stream = s.dataAddr(ph, r)
		// Loads execute from a small set of static sites (real code has a
		// handful of load instructions per loop); stride prefetchers can
		// only train on per-site patterns, so stable sites matter. The
		// streaming load always uses site 0.
		if stream {
			inst.PC = s.pcBase + 8
		} else {
			inst.PC = s.pcBase + 8 + uint64(1+r.Intn(11))*4
		}
		inst.Size = 4
		inst.Dst = regLoadDst + s.dstRot
		s.dstRot = (s.dstRot + 1) % 8
		if ph.PointerChase && cold {
			// Next cold address will depend on this load's value.
			inst.Src1 = s.chainReg
			s.chainReg = inst.Dst
		}
		s.lastDst = inst.Dst
	case u < loadFrac+storeFrac:
		inst.Op = sim.OpStore
		inst.Addr, _, _ = s.dataAddr(ph, r)
		inst.PC = s.pcBase + 8 + uint64(12+r.Intn(6))*4
		inst.Size = 4
		if s.lastDst >= 0 {
			inst.Src1 = s.lastDst
		}
	default:
		if r.Float64() < ph.FPFrac {
			if r.Float64() < 0.3 {
				inst.Op = sim.OpFPMul
			} else {
				inst.Op = sim.OpFPALU
			}
		} else {
			if r.Float64() < 0.05 {
				inst.Op = sim.OpIntMul
			} else {
				inst.Op = sim.OpIntALU
			}
		}
		inst.Dst = regScratch + int16(r.Intn(12))
		dep := ph.DepFrac
		if frontHalf {
			dep *= 0.4 // front of the loop is address arithmetic: parallel
		} else {
			dep = dep*1.5 + 0.2 // back of the loop is the serial reduction
			if dep > 1 {
				dep = 1
			}
		}
		if s.lastDst >= 0 && r.Float64() < dep {
			inst.Src1 = s.lastDst
		} else {
			inst.Src1 = regScratch + int16(r.Intn(12))
		}
		s.lastDst = inst.Dst
	}
}

// dataAddr draws the next data address with the phase's locality; cold
// reports whether the access targets a random (likely-missing) line and
// stream whether it is part of the sequential walk.
func (s *programStream) dataAddr(ph *Phase, r *sim.RNG) (addr uint64, cold, stream bool) {
	base := uint64(specArrayBase) + uint64(ph.Region)<<32
	// Streaming comes in bursts, like the scan/copy loops it models: once
	// a burst starts, the next ~48 memory accesses continue the walk.
	// Burst misses arrive back to back, overlap in the MSHRs and hit open
	// DRAM rows — the cheap, prefetchable misses of bzip2/gzip/equake —
	// whereas isolated random misses pay the full latency.
	const streamBurst = 48
	u := r.Float64()
	if s.streamRun > 0 || u < ph.StreamFrac/streamBurst {
		if s.streamRun <= 0 {
			s.streamRun = streamBurst/2 + r.Intn(streamBurst)
		}
		s.streamRun--
		s.streamPos += uint64(ph.StrideBytes)
		if s.streamPos >= uint64(ph.WSBytes) {
			s.streamPos = 0
		}
		return base + s.streamPos, false, true
	}
	switch {
	case u < ph.ColdFrac:
		// Random line in the full working set: mostly compulsory misses.
		return base + uint64(r.Int63())%uint64(ph.WSBytes), true, false
	case u < ph.ColdFrac+ph.WarmFrac:
		// Random line in the warm region: capacity misses on small LLCs,
		// hits once an LLC is large enough to hold the region.
		return base + uint64(r.Int63())%uint64(ph.WarmBytes), true, false
	default:
		// Hot set with spatial locality: short walks near the previous
		// hot address, occasional jumps within the hot set.
		if r.Float64() < 0.05 {
			s.hotPos = uint64(r.Int63()) % uint64(ph.HotBytes)
		} else {
			s.hotPos = (s.hotPos + uint64(4+r.Intn(7)*4)) % uint64(ph.HotBytes)
		}
		return base + s.hotPos, false, false
	}
}
