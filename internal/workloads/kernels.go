package workloads

import (
	"fmt"

	"emprof/internal/sim"
)

// Kernel regions used by the signal-shape studies (Figs. 1–5).
const (
	RegionKernelWarm   uint16 = 40
	RegionKernelAccess uint16 = 41
	RegionKernelIdleA  uint16 = 42
	RegionKernelIdleB  uint16 = 43
)

// MissLevel selects which cache level the access kernel misses in,
// matching the paper's "small application [whose] array size can be
// changed in order to produce cache misses in different levels of the
// cache hierarchy" (Section III-B, Fig. 2).
type MissLevel int

const (
	// MissNone sizes the array inside L1D: every load hits.
	MissNone MissLevel = iota
	// MissL1 sizes the array between L1D and LLC: L1 misses, LLC hits
	// (Fig. 2a).
	MissL1
	// MissLLC sizes the array beyond the LLC: LLC misses (Fig. 2b).
	MissLLC
)

// AccessKernelParams configures the load kernel.
type AccessKernelParams struct {
	// Level selects the miss level relative to the given cache sizes.
	Level MissLevel
	// L1Bytes and LLCBytes are the target device's cache sizes.
	L1Bytes, LLCBytes int
	// LineBytes is the cache line size.
	LineBytes int
	// Accesses is the number of loads in the access section.
	Accesses int
	// GapWork is the ALU instruction count between consecutive loads
	// (compute separating the stalls so each is individually visible).
	GapWork int
	// Serialize makes each load's address depend on the previous loaded
	// value (no MLP). When false, loads are independent and overlap up to
	// the MSHR limit — the Fig. 3a regime where early misses cause no
	// stall.
	Serialize bool
	// BlankIters is the marker-loop length surrounding the section.
	BlankIters int
	// Seed drives address shuffling.
	Seed uint64
}

// DefaultAccessKernelParams returns a kernel matching the paper's Fig. 2
// methodology against the given cache sizes.
func DefaultAccessKernelParams(level MissLevel, l1, llc int) AccessKernelParams {
	return AccessKernelParams{
		Level:      level,
		L1Bytes:    l1,
		LLCBytes:   llc,
		LineBytes:  64,
		Accesses:   64,
		GapWork:    120,
		Serialize:  true,
		BlankIters: 4000,
		Seed:       0xfeed,
	}
}

// AccessKernel builds the Fig. 2 load kernel: a warm-up pass over an array
// whose size selects the miss level, marker loops, and a sequence of
// spaced loads over that array.
//
//   - MissNone: array ≤ L1D/2 — warmed loads hit L1.
//   - MissL1: array between L1D and LLC — second-pass loads miss L1 but
//     hit LLC (brief stalls, Fig. 2a).
//   - MissLLC: array ≫ LLC — second-pass loads with fresh lines miss the
//     LLC (long stalls, Fig. 2b).
func AccessKernel(p AccessKernelParams) (*sim.SliceStream, error) {
	if p.Accesses <= 0 || p.LineBytes <= 0 || p.L1Bytes <= 0 || p.LLCBytes <= p.L1Bytes {
		return nil, fmt.Errorf("workloads: invalid access kernel params %+v", p)
	}
	var arrayBytes int
	switch p.Level {
	case MissNone:
		arrayBytes = p.L1Bytes / 2
	case MissL1:
		arrayBytes = (p.L1Bytes + p.LLCBytes) / 2
		if arrayBytes > p.LLCBytes/2 {
			arrayBytes = p.LLCBytes / 2
		}
		if arrayBytes <= p.L1Bytes {
			arrayBytes = p.L1Bytes * 2
		}
	case MissLLC:
		arrayBytes = p.LLCBytes * 32
	default:
		return nil, fmt.Errorf("workloads: unknown miss level %d", p.Level)
	}
	lines := arrayBytes / p.LineBytes
	if lines < p.Accesses {
		return nil, fmt.Errorf("workloads: array of %d lines too small for %d accesses", lines, p.Accesses)
	}

	rng := sim.NewRNG(p.Seed)
	var insts []sim.Inst
	pc := uint64(0x8000)
	emit := func(in sim.Inst) {
		in.PC = pc
		pc += 4
		insts = append(insts, in)
	}
	blank := func(region uint16) {
		loopPC := pc
		for i := 0; i < p.BlankIters; i++ {
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch, Src1: regScratch, Region: region})
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch + 1, Src1: regScratch + 1, Region: region})
			emit(sim.Inst{Op: sim.OpBranch, Src1: regScratch, Taken: i != p.BlankIters-1, Target: loopPC, Region: region})
			pc = loopPC
			if i == p.BlankIters-1 {
				pc = loopPC + 12
			}
		}
	}

	// Warm-up: touch every line once so MissNone/MissL1 levels are
	// populated (for MissLLC the warm lines are mostly evicted again, and
	// the access section uses untouched lines anyway).
	warmPC := pc
	for i := 0; i < lines/2; i++ {
		addr := uint64(arrayBase + i*p.LineBytes)
		emit(sim.Inst{Op: sim.OpLoad, Dst: regLoadDst, Src1: sim.RegNone, Addr: addr, Size: 4, Region: RegionKernelWarm})
		emit(sim.Inst{Op: sim.OpBranch, Src1: regScratch, Taken: i != lines/2-1, Target: warmPC, Region: RegionKernelWarm})
		pc = warmPC
		if i == lines/2-1 {
			pc = warmPC + 8
		}
	}

	blank(RegionKernelIdleA)

	// Access section.
	perm := rng.Perm(lines / 2)
	accPC := pc
	dst := int16(regLoadDst)
	for i := 0; i < p.Accesses; i++ {
		pc = accPC
		var idx int
		if p.Level == MissLLC {
			// Untouched half of the array: guaranteed cold lines.
			idx = lines/2 + perm[i%len(perm)]
		} else {
			idx = perm[i%len(perm)]
		}
		addr := uint64(arrayBase + idx*p.LineBytes)
		if p.Serialize {
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regAddr, Src1: regChain, Region: RegionKernelAccess})
			emit(sim.Inst{Op: sim.OpLoad, Dst: dst, Src1: regAddr, Addr: addr, Size: 4, Region: RegionKernelAccess})
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regChain, Src1: dst, Region: RegionKernelAccess})
		} else {
			emit(sim.Inst{Op: sim.OpLoad, Dst: dst, Src1: sim.RegNone, Addr: addr, Size: 4, Region: RegionKernelAccess})
		}
		for w := 0; w < p.GapWork; w++ {
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch + int16(w%6), Src1: regScratch + int16(w%6), Region: RegionKernelAccess})
		}
		emit(sim.Inst{Op: sim.OpBranch, Src1: regScratch, Taken: true, Target: accPC, Region: RegionKernelAccess})
	}
	pc = accPC + 64

	blank(RegionKernelIdleB)
	return sim.NewSliceStream(insts), nil
}

// OverlapKernelParams configures the Fig. 3 MLP study.
type OverlapKernelParams struct {
	// Groups is the number of miss groups; GroupSize is the number of
	// independent loads issued back to back in each group.
	Groups, GroupSize int
	// GapWork is the ALU instruction count between groups.
	GapWork int
	// LineBytes and LLCBytes size the cold array.
	LineBytes, LLCBytes int
	// Seed drives address selection.
	Seed uint64
}

// OverlapKernel issues GroupSize *independent* loads back to back per
// group: the first misses overlap with continued execution (no stall of
// their own — Fig. 3a) until the core runs out of load-queue/MSHR
// resources and fully stalls. Ground truth shows more misses than stall
// intervals, while the stall *time* still tracks the group's performance
// cost — exactly the under-counting-but-accurate-accounting argument of
// Section III-B.
func OverlapKernel(p OverlapKernelParams) (*sim.SliceStream, error) {
	if p.Groups <= 0 || p.GroupSize <= 0 || p.LineBytes <= 0 || p.LLCBytes <= 0 {
		return nil, fmt.Errorf("workloads: invalid overlap kernel params %+v", p)
	}
	var insts []sim.Inst
	pc := uint64(0x8000)
	emit := func(in sim.Inst) {
		in.PC = pc
		pc += 4
		insts = append(insts, in)
	}
	next := uint64(arrayBase)
	step := uint64(p.LLCBytes) // each line maps far apart: always cold
	loopPC := pc
	for g := 0; g < p.Groups; g++ {
		pc = loopPC
		for i := 0; i < p.GroupSize; i++ {
			emit(sim.Inst{Op: sim.OpLoad, Dst: regLoadDst + int16(i%8), Src1: sim.RegNone, Addr: next, Size: 4, Region: RegionKernelAccess})
			next += step + uint64(p.LineBytes)
		}
		for w := 0; w < p.GapWork; w++ {
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch + int16(w%6), Src1: regScratch + int16(w%6), Region: RegionKernelAccess})
		}
		emit(sim.Inst{Op: sim.OpBranch, Src1: regScratch, Taken: g != p.Groups-1, Target: loopPC, Region: RegionKernelAccess})
	}
	return sim.NewSliceStream(insts), nil
}

// DualMissKernel reproduces Fig. 3b: an instruction fetch and a data load
// that both miss the LLC and overlap. Each episode jumps to a cold code
// page while the jump target's first instruction immediately loads from a
// cold data line.
func DualMissKernel(episodes, gapWork, lineBytes, llcBytes int) (*sim.SliceStream, error) {
	if episodes <= 0 || gapWork < 0 {
		return nil, fmt.Errorf("workloads: invalid dual-miss kernel params")
	}
	var insts []sim.Inst
	pc := uint64(0x8000)
	emit := func(in sim.Inst) {
		in.PC = pc
		pc += 4
		insts = append(insts, in)
	}
	codeNext := uint64(0x0100_0000)
	dataNext := uint64(arrayBase)
	step := uint64(llcBytes)
	for e := 0; e < episodes; e++ {
		// Jump to a never-before-executed code page: I$ → LLC miss.
		emit(sim.Inst{Op: sim.OpBranch, Taken: true, Target: codeNext, Region: RegionKernelAccess})
		pc = codeNext
		// First instruction at the target loads cold data: D$ → LLC miss
		// overlapping the I-side miss.
		emit(sim.Inst{Op: sim.OpLoad, Dst: regLoadDst, Src1: sim.RegNone, Addr: dataNext, Size: 4, Region: RegionKernelAccess})
		emit(sim.Inst{Op: sim.OpIntALU, Dst: regChain, Src1: regLoadDst, Region: RegionKernelAccess})
		for w := 0; w < gapWork; w++ {
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch + int16(w%6), Src1: regScratch + int16(w%6), Region: RegionKernelAccess})
		}
		codeNext += step + uint64(lineBytes)
		dataNext += step + 2*uint64(lineBytes)
	}
	return sim.NewSliceStream(insts), nil
}

// RefreshKernel builds a long run of serialized LLC misses spanning many
// DRAM refresh intervals, so that some misses collide with refresh and
// exhibit the 2–3 µs stalls of Fig. 5.
func RefreshKernel(misses, gapWork, lineBytes, llcBytes int, seed uint64) (*sim.SliceStream, error) {
	if misses <= 0 {
		return nil, fmt.Errorf("workloads: refresh kernel needs misses > 0")
	}
	var insts []sim.Inst
	pc := uint64(0x8000)
	emit := func(in sim.Inst) {
		in.PC = pc
		pc += 4
		insts = append(insts, in)
	}
	next := uint64(arrayBase)
	step := uint64(llcBytes)
	dst := int16(regLoadDst)
	loopPC := pc
	for i := 0; i < misses; i++ {
		pc = loopPC
		emit(sim.Inst{Op: sim.OpIntALU, Dst: regAddr, Src1: regChain, Region: RegionKernelAccess})
		emit(sim.Inst{Op: sim.OpLoad, Dst: dst, Src1: regAddr, Addr: next, Size: 4, Region: RegionKernelAccess})
		emit(sim.Inst{Op: sim.OpIntALU, Dst: regChain, Src1: dst, Region: RegionKernelAccess})
		for w := 0; w < gapWork; w++ {
			emit(sim.Inst{Op: sim.OpIntALU, Dst: regScratch + int16(w%6), Src1: regScratch + int16(w%6), Region: RegionKernelAccess})
		}
		emit(sim.Inst{Op: sim.OpBranch, Src1: regScratch, Taken: i != misses-1, Target: loopPC, Region: RegionKernelAccess})
		next += step + uint64(lineBytes)
	}
	return sim.NewSliceStream(insts), nil
}
