package workloads

import (
	"testing"

	"emprof/internal/sim"
)

// microStreamParamGrid exercises the phase boundaries: tiny and default
// geometries, TM divisible and non-divisible by CM, IterWork below one
// PRNG-loop body, and TM < CM (no calls at all).
func microStreamParamGrid() []MicroParams {
	small := MicroParams{TM: 16, CM: 4, Pages: 64, PageBytes: 4096, LineBytes: 64,
		BlankIters: 7, CallWork: 5, IterWork: 36, TouchWork: 2, Seed: 99}
	odd := small
	odd.TM = 17
	odd.CM = 5
	odd.IterWork = 1 // below one PRNG body: prngIters clamps to 1
	nocall := small
	nocall.TM = 3
	nocall.CM = 8
	return []MicroParams{
		small,
		odd,
		nocall,
		DefaultMicroParams(32, 8),
		DefaultMicroParams(64, 1),
	}
}

// TestMicroStreamMatchesReference proves the incremental generator emits
// exactly the reference trace, element for element, and that Len agrees.
func TestMicroStreamMatchesReference(t *testing.T) {
	for _, p := range microStreamParamGrid() {
		if err := p.Validate(); err != nil {
			t.Fatalf("grid params invalid: %v", err)
		}
		want := materializeMicro(p)
		st, err := Microbenchmark(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Len() != len(want) {
			t.Fatalf("TM=%d CM=%d IterWork=%d: Len()=%d, reference has %d",
				p.TM, p.CM, p.IterWork, st.Len(), len(want))
		}
		var in sim.Inst
		for i := 0; ; i++ {
			if !st.Next(&in) {
				if i != len(want) {
					t.Fatalf("TM=%d CM=%d: stream ended at %d, want %d", p.TM, p.CM, i, len(want))
				}
				break
			}
			if i >= len(want) {
				t.Fatalf("TM=%d CM=%d: stream longer than reference (%d)", p.TM, p.CM, len(want))
			}
			if in != want[i] {
				t.Fatalf("TM=%d CM=%d inst %d: got %+v want %+v", p.TM, p.CM, i, in, want[i])
			}
		}
	}
}

// TestMicroStreamReset proves Reset rewinds to an identical replay
// (including the RNG-drawn addresses and the used-line set).
func TestMicroStreamReset(t *testing.T) {
	p := DefaultMicroParams(32, 8)
	st, err := Microbenchmark(p)
	if err != nil {
		t.Fatal(err)
	}
	first := drain(st)
	st.Reset()
	second := drain(st)
	if len(first) != len(second) {
		t.Fatalf("replay length %d != %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("inst %d differs after Reset: %+v vs %+v", i, second[i], first[i])
		}
	}
}
