package workloads

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// ProgramFromJSON decodes a statistical workload description, so users
// can profile their own memory-behaviour models without writing Go. The
// format mirrors the Program/Phase structs, e.g.:
//
//	{
//	  "Name": "myapp",
//	  "Seed": 7,
//	  "Phases": [{
//	    "Name": "hot_loop", "Region": 1, "Insts": 2000000,
//	    "LoadFrac": 0.28, "StoreFrac": 0.08, "FPFrac": 0.1,
//	    "LoopLen": 48, "CodeBytes": 16384,
//	    "WSBytes": 8388608, "HotBytes": 24576,
//	    "ColdFrac": 0.0005,
//	    "WarmBytes": 1048576, "WarmFrac": 0.0004,
//	    "StrideBytes": 8, "StreamFrac": 0.01,
//	    "DepFrac": 0.4
//	  }]
//	}
func ProgramFromJSON(data []byte) (*Program, error) {
	var p Program
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("workloads: decoding program: %w", err)
	}
	if p.Name == "" {
		p.Name = "custom"
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadProgram reads a JSON workload description from a file.
func LoadProgram(path string) (*Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ProgramFromJSON(data)
}

// ToJSON encodes a program for editing or archival.
func (p *Program) ToJSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}
