package perfsim

import (
	"testing"

	"emprof/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.OverflowPeriod = 0 },
		func(c *Config) { c.HandlerMissMean = -1 },
		func(c *Config) { c.ThrottleRate = 0 },
		func(c *Config) { c.ThrottleJitter = 1 },
		func(c *Config) { c.TimerRateHz = -1 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewSampler(DefaultConfig(), nil); err == nil {
		t.Error("nil RNG accepted")
	}
}

func TestPerfOvercountsWithVariance(t *testing.T) {
	s := MustNewSampler(DefaultConfig(), sim.NewRNG(1))
	// The paper's scenario: 1024 engineered misses over a few ms.
	study := s.Repeat(30, 1024, 8e-3)
	if study.Summary.Mean < 10*1024 {
		t.Fatalf("mean reported %v: perf must overcount by >10x", study.Summary.Mean)
	}
	if study.Summary.StdDev < 0.2*study.Summary.Mean {
		t.Fatalf("stddev %v vs mean %v: run-to-run variance too small",
			study.Summary.StdDev, study.Summary.Mean)
	}
	for _, r := range study.Runs {
		if r.Reported < r.TrueMisses {
			t.Fatal("reported count below true count")
		}
		if r.DurationS <= 8e-3 {
			t.Fatal("profiling must dilate execution")
		}
		if r.Overcount() < 1 {
			t.Fatal("overcount below 1")
		}
	}
}

func TestPerfFeedbackDominatesSmallApps(t *testing.T) {
	// Doubling the app's misses barely changes the reported count: the
	// handler feedback dominates (which is exactly why counting is so
	// unreliable at this scale).
	s := MustNewSampler(DefaultConfig(), sim.NewRNG(2))
	a := s.Repeat(30, 1024, 8e-3).Summary.Mean
	b := s.Repeat(30, 2048, 8e-3).Summary.Mean
	if b > 2.5*a {
		t.Fatalf("reported counts scale with app misses (%v -> %v): feedback model broken", a, b)
	}
}

func TestInstrumentedStreamInjectsHandlers(t *testing.T) {
	base := make([]sim.Inst, 10000)
	for i := range base {
		base[i] = sim.Inst{PC: uint64(0x1000 + i*4), Op: sim.OpIntALU, Dst: 24, Src1: sim.RegNone}
	}
	opts := DefaultInstrumentOptions()
	opts.EveryInsts = 1000
	opts.HandlerInsts = 100
	s := NewInstrumentedStream(sim.NewSliceStream(base), opts)
	var app, handler int
	var in sim.Inst
	for s.Next(&in) {
		if in.Region == RegionHandler {
			handler++
			if in.Op == sim.OpLoad || in.Op == sim.OpStore {
				if in.Addr < kernelBase {
					t.Fatalf("handler access outside kernel space: %#x", in.Addr)
				}
			}
		} else {
			app++
		}
	}
	if app != 10000 {
		t.Fatalf("app instructions %d, want 10000", app)
	}
	wantHandlers := 10 * 100
	if handler != wantHandlers {
		t.Fatalf("handler instructions %d, want %d", handler, wantHandlers)
	}
}

func TestInstrumentedStreamDefaults(t *testing.T) {
	s := NewInstrumentedStream(sim.NewSliceStream(nil), InstrumentOptions{})
	var in sim.Inst
	if s.Next(&in) {
		t.Fatal("empty inner stream must end immediately")
	}
}
