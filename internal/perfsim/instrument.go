package perfsim

import (
	"emprof/internal/sim"
)

// InstrumentOptions controls handler-burst injection into a workload
// stream, the mechanistic demonstration of profiler interference: the
// injected bursts execute on the simulated device, polluting its caches
// and dilating its execution exactly as a sampling handler would.
type InstrumentOptions struct {
	// EveryInsts is the app-instruction period between interrupts.
	EveryInsts int64
	// HandlerInsts is the instruction count of each handler burst.
	HandlerInsts int
	// HandlerLoadFrac is the fraction of handler instructions that access
	// kernel data (ring buffer, task state).
	HandlerLoadFrac float64
	// KernelWSBytes is the handler's data footprint; a footprint
	// comparable to the LLC guarantees handler misses and app-line
	// eviction.
	KernelWSBytes int64
	// Seed drives handler address generation.
	Seed uint64
}

// DefaultInstrumentOptions returns a 4 kHz-ish interrupt profile for a
// ~1 GHz, IPC≈1.5 target.
func DefaultInstrumentOptions() InstrumentOptions {
	return InstrumentOptions{
		EveryInsts:      300_000,
		HandlerInsts:    1_800,
		HandlerLoadFrac: 0.35,
		KernelWSBytes:   2 << 20,
		Seed:            0xbeef,
	}
}

const kernelBase = 0xc000_0000

// RegionHandler tags injected handler instructions, so experiments can
// separate app misses from handler misses in the ground truth.
const RegionHandler uint16 = 99

// InstrumentedStream wraps inner, injecting a handler burst every
// EveryInsts application instructions.
type InstrumentedStream struct {
	inner sim.Stream
	opts  InstrumentOptions
	rng   *sim.RNG

	appCount   int64
	inHandler  bool
	handlerPos int
	handlerPC  uint64
}

// NewInstrumentedStream wraps a workload with sampling-handler injection.
func NewInstrumentedStream(inner sim.Stream, opts InstrumentOptions) *InstrumentedStream {
	if opts.EveryInsts <= 0 {
		opts.EveryInsts = DefaultInstrumentOptions().EveryInsts
	}
	if opts.HandlerInsts <= 0 {
		opts.HandlerInsts = DefaultInstrumentOptions().HandlerInsts
	}
	if opts.KernelWSBytes <= 0 {
		opts.KernelWSBytes = DefaultInstrumentOptions().KernelWSBytes
	}
	return &InstrumentedStream{
		inner: inner,
		opts:  opts,
		rng:   sim.NewRNG(opts.Seed),
	}
}

// Next implements sim.Stream.
func (s *InstrumentedStream) Next(inst *sim.Inst) bool {
	if s.inHandler {
		s.emitHandler(inst)
		return true
	}
	if !s.inner.Next(inst) {
		return false
	}
	s.appCount++
	if s.appCount%s.opts.EveryInsts == 0 {
		// Interrupt after this instruction: start a burst.
		s.inHandler = true
		s.handlerPos = 0
		s.handlerPC = kernelBase + uint64(s.rng.Intn(64))*0x1000
	}
	return true
}

// emitHandler produces the next handler instruction.
func (s *InstrumentedStream) emitHandler(inst *sim.Inst) {
	o := &s.opts
	*inst = sim.Inst{
		PC:     s.handlerPC + uint64(s.handlerPos%256)*4,
		Op:     sim.OpIntALU,
		Dst:    40,
		Src1:   40,
		Region: RegionHandler,
	}
	if s.rng.Float64() < o.HandlerLoadFrac {
		if s.rng.Float64() < 0.4 {
			inst.Op = sim.OpStore
		} else {
			inst.Op = sim.OpLoad
			inst.Dst = 41
		}
		inst.Addr = kernelBase + uint64(s.rng.Int63())%uint64(o.KernelWSBytes)
		inst.Size = 4
	}
	s.handlerPos++
	if s.handlerPos >= o.HandlerInsts {
		s.inHandler = false
	}
}
