// Package perfsim models the baseline the paper uses to motivate EMPROF:
// counter-overflow sampling à la Linux perf on a small ARM core. The paper
// reports that counting LLC misses with perf for a microbenchmark
// engineered to produce exactly 1024 misses yielded an average of 32768
// reported misses with a standard deviation of 14543 (Section V) — the
// "observer effect" EMPROF exists to avoid.
//
// The model is mechanistic: every overflow interrupt runs a sampling
// handler whose own (cold) kernel data structures miss the LLC; those
// handler misses are themselves counted and advance the overflow counter,
// creating positive feedback that the kernel bounds only via interrupt
// throttling. The reported count is therefore dominated by
// (interrupt rate × handler misses), both of which vary strongly from run
// to run — reproducing both the inflation and the variance.
package perfsim

import (
	"fmt"
	"math"

	"emprof/internal/dsp"
	"emprof/internal/sim"
)

// Config parameterises the sampling profiler.
type Config struct {
	// OverflowPeriod is the counter value at which the PMU raises an
	// overflow interrupt (perf's sample period).
	OverflowPeriod int
	// HandlerMissMean / HandlerMissSigma describe the LLC misses the
	// sampling handler itself produces per interrupt (ring-buffer append,
	// stack, task metadata — cold on these small LLCs).
	HandlerMissMean  float64
	HandlerMissSigma float64
	// ThrottleRate is the kernel's maximum sampling-interrupt rate in
	// interrupts/second; ThrottleJitter is its run-to-run relative
	// variation (CPU frequency scaling, hrtimer slack, other interrupt
	// load).
	ThrottleRate   float64
	ThrottleJitter float64
	// TimerRateHz is the base timer-tick sampling unrelated to overflow.
	TimerRateHz float64
}

// DefaultConfig returns values calibrated so that a 1024-miss
// microbenchmark run of a few milliseconds reports on the order of the
// paper's 32768 ± 14543.
func DefaultConfig() Config {
	return Config{
		OverflowPeriod:   64,
		HandlerMissMean:  230,
		HandlerMissSigma: 70,
		ThrottleRate:     34_000,
		ThrottleJitter:   0.34,
		TimerRateHz:      4_000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.OverflowPeriod < 1 {
		return fmt.Errorf("perfsim: overflow period %d < 1", c.OverflowPeriod)
	}
	if c.HandlerMissMean < 0 || c.HandlerMissSigma < 0 {
		return fmt.Errorf("perfsim: negative handler miss parameters")
	}
	if c.ThrottleRate <= 0 || c.ThrottleJitter < 0 || c.ThrottleJitter >= 1 {
		return fmt.Errorf("perfsim: bad throttle parameters")
	}
	if c.TimerRateHz < 0 {
		return fmt.Errorf("perfsim: negative timer rate")
	}
	return nil
}

// RunReport is one simulated profiling run.
type RunReport struct {
	// Reported is the LLC miss count perf would print.
	Reported int
	// TrueMisses is the application's own miss count.
	TrueMisses int
	// Interrupts is the number of sampling interrupts taken.
	Interrupts int
	// HandlerMisses is the total misses contributed by the handler.
	HandlerMisses int
	// DurationS is the (dilated) run duration: handler time is the
	// profiler's direct overhead on the target.
	DurationS float64
}

// Overcount returns Reported / TrueMisses.
func (r RunReport) Overcount() float64 {
	if r.TrueMisses == 0 {
		return 0
	}
	return float64(r.Reported) / float64(r.TrueMisses)
}

// Sampler simulates perf-style overflow sampling.
type Sampler struct {
	cfg Config
	rng *sim.RNG
}

// NewSampler returns a sampler; rng drives run-to-run variation.
func NewSampler(cfg Config, rng *sim.RNG) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("perfsim: nil RNG")
	}
	return &Sampler{cfg: cfg, rng: rng}, nil
}

// MustNewSampler is NewSampler but panics on configuration errors.
func MustNewSampler(cfg Config, rng *sim.RNG) *Sampler {
	s, err := NewSampler(cfg, rng)
	if err != nil {
		panic(err)
	}
	return s
}

// Profile simulates one perf run over an application with the given true
// LLC miss count and uninstrumented duration. handlerCostS is the handler
// execution time per interrupt (defaulted when zero).
func (s *Sampler) Profile(trueMisses int, durationS float64) RunReport {
	cfg := s.cfg
	r := s.rng

	// Effective throttled interrupt rate for this run.
	rate := cfg.ThrottleRate * (1 + cfg.ThrottleJitter*r.NormFloat64())
	if rate < cfg.TimerRateHz {
		rate = cfg.TimerRateHz
	}

	// Feedback: each interrupt's handler misses advance the overflow
	// counter by ~handlerMiss/OverflowPeriod further interrupts. The
	// un-throttled demand rate is the fixed point of
	//   demand = (appMissRate + demand × h) / T
	// which diverges when h > T — exactly why the kernel throttles.
	h := cfg.HandlerMissMean
	T := float64(cfg.OverflowPeriod)
	appRate := float64(trueMisses) / durationS / T // overflow interrupts/s from app misses alone
	demand := appRate
	if h < T {
		demand = appRate / (1 - h/T)
	} else {
		demand = math.Inf(1)
	}
	intRate := demand
	if intRate > rate {
		intRate = rate
	}
	intRate += cfg.TimerRateHz

	// Handler time dilates the run; interrupts keep firing during the
	// dilated portion too (the handler's own misses re-trigger overflow).
	const handlerCostS = 6e-6
	dur := durationS
	for i := 0; i < 4; i++ { // fixed-point iteration on dilation
		dur = durationS + intRate*dur*handlerCostS
	}

	n := int(intRate * dur)
	if n < 0 {
		n = 0
	}
	handlerTotal := 0
	for i := 0; i < n; i++ {
		m := cfg.HandlerMissMean + cfg.HandlerMissSigma*r.NormFloat64()
		if m < 0 {
			m = 0
		}
		handlerTotal += int(m)
	}
	return RunReport{
		Reported:      trueMisses + handlerTotal,
		TrueMisses:    trueMisses,
		Interrupts:    n,
		HandlerMisses: handlerTotal,
		DurationS:     dur,
	}
}

// Study summarises repeated runs, as the paper's mean ± stddev.
type Study struct {
	Runs    []RunReport
	Summary dsp.Summary
}

// Repeat performs n independent profiling runs and summarises the
// reported counts.
func (s *Sampler) Repeat(n, trueMisses int, durationS float64) Study {
	st := Study{Runs: make([]RunReport, 0, n)}
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		rep := s.Profile(trueMisses, durationS)
		st.Runs = append(st.Runs, rep)
		xs = append(xs, float64(rep.Reported))
	}
	st.Summary = dsp.Summarize(xs)
	return st
}
