// Package sim provides the shared simulation substrate: the instruction
// stream representation consumed by the cycle-level processor model, region
// markers used for attribution ground truth, and a small deterministic
// pseudo-random number generator so that every experiment in the repository
// is reproducible from a seed.
package sim

import "math"

// RNG is a deterministic pseudo-random number generator based on
// splitmix64 seeding and xoshiro256** output. It is intentionally not
// math/rand so that traces are stable across Go releases and so that each
// component of the simulator can own an independent, cheaply-forkable
// stream.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded with seed via splitmix64, which
// guarantees a well-mixed internal state even for small seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro's all-zero state is absorbing; splitmix cannot produce it for
	// all four words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Fork returns a new generator whose stream is independent of r's
// continuation. It advances r once so successive forks differ.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Geometric returns a geometric variate: the number of failures before the
// first success for success probability p in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("sim: Geometric with non-positive p")
	}
	u := r.Float64()
	if u == 0 {
		return 0
	}
	return int(math.Floor(math.Log(1-u) / math.Log(1-p)))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
