// Package sim provides the shared simulation substrate: the instruction
// stream representation consumed by the cycle-level processor model, region
// markers used for attribution ground truth, and a small deterministic
// pseudo-random number generator so that every experiment in the repository
// is reproducible from a seed.
package sim

import "math"

// RNG is a deterministic pseudo-random number generator based on
// splitmix64 seeding and xoshiro256** output. It is intentionally not
// math/rand so that traces are stable across Go releases and so that each
// component of the simulator can own an independent, cheaply-forkable
// stream.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded with seed via splitmix64, which
// guarantees a well-mixed internal state even for small seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro's all-zero state is absorbing; splitmix cannot produce it for
	// all four words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Fork returns a new generator whose stream is independent of r's
// continuation. It advances r once so successive forks differ.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Ziggurat tables for NormFloat64 (Marsaglia & Tsang 2000, 128 strips),
// built once at package init. znR is the start of the tail strip and znV
// the common strip area; the derived tables give, per strip i, the
// acceptance threshold znK[i] (scaled to 31 bits), the value scale znW[i]
// and the density znF[i] at the strip edge.
const (
	znR = 3.442619855899
	znV = 9.91256303526217e-3
	znM = 1 << 31
)

var (
	znK [128]uint32
	znW [128]float64
	znF [128]float64
)

func init() {
	f := math.Exp(-0.5 * znR * znR)
	q := znV / f
	znK[0] = uint32(znR / q * znM)
	znK[1] = 0
	znW[0] = q / znM
	znW[127] = znR / znM
	znF[0] = 1
	znF[127] = f
	dn := znR
	tn := znR
	for i := 126; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(znV/dn+math.Exp(-0.5*dn*dn)))
		znK[i+1] = uint32(dn / tn * znM)
		tn = dn
		znF[i] = math.Exp(-0.5 * dn * dn)
		znW[i] = dn / znM
	}
}

// NormFloat64 returns a standard normal variate using the ziggurat method.
// The common case (≈98.5% of draws) costs a single Uint64 plus one table
// compare and one multiply — no logs or square roots — which matters
// because EM noise synthesis draws two variates per output sample.
func (r *RNG) NormFloat64() float64 {
	j := int32(r.Uint32())
	i := uint32(j) & 127
	m := j >> 31 // branchless |j|: random-sign branches mispredict half the time
	a := uint32((j ^ m) - m)
	if a < znK[i] {
		return float64(j) * znW[i]
	}
	return r.normSlow(j, i)
}

// normSlow resolves the rare draws that fail the ziggurat fast test: the
// tail strip beyond znR (Marsaglia's exponential wedge rejection) and the
// curved wedge of interior strips. It consumes the uniform stream exactly
// as the classic single-loop formulation would, so NormFloat64 and the
// batch NormFloat64s stay draw-for-draw equivalent.
func (r *RNG) normSlow(j int32, i uint32) float64 {
	for {
		if i == 0 {
			for {
				x := -math.Log(r.Float64()) / znR
				y := -math.Log(r.Float64())
				if y+y >= x*x {
					if j > 0 {
						return znR + x
					}
					return -(znR + x)
				}
			}
		}
		x := float64(j) * znW[i]
		if znF[i]+r.Float64()*(znF[i-1]-znF[i]) < math.Exp(-0.5*x*x) {
			return x
		}
		j = int32(r.Uint32())
		i = uint32(j) & 127
		m := j >> 31
		a := uint32((j ^ m) - m)
		if a < znK[i] {
			return float64(j) * znW[i]
		}
	}
}

// NormFloat64s fills dst with standard normal variates. The stream is
// exactly the one len(dst) sequential NormFloat64 calls would produce (the
// polar method's rejection loop consumes the same underlying uniforms), so
// block-synthesis paths can pre-draw a batch of noise without perturbing
// determinism relative to the per-sample path.
func (r *RNG) NormFloat64s(dst []float64) {
	for n := range dst {
		j := int32(r.Uint32())
		i := uint32(j) & 127
		m := j >> 31
		a := uint32((j ^ m) - m)
		if a < znK[i] {
			dst[n] = float64(j) * znW[i]
			continue
		}
		dst[n] = r.normSlow(j, i)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Geometric returns a geometric variate: the number of failures before the
// first success for success probability p in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("sim: Geometric with non-positive p")
	}
	u := r.Float64()
	if u == 0 {
		return 0
	}
	return int(math.Floor(math.Log(1-u) / math.Log(1-p)))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
