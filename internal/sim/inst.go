package sim

import "fmt"

// Op is the operation class of an instruction. The processor model does not
// interpret program semantics; it only needs each instruction's resource
// usage (which functional unit, for how many cycles) and its memory
// behaviour (address and size for loads/stores), so a small set of classes
// is sufficient for cycle-level timing.
type Op uint8

const (
	// OpNop consumes a slot without using a functional unit.
	OpNop Op = iota
	// OpIntALU is a single-cycle integer operation.
	OpIntALU
	// OpIntMul is a pipelined multi-cycle integer multiply.
	OpIntMul
	// OpIntDiv is an unpipelined long-latency integer divide.
	OpIntDiv
	// OpFPALU is a pipelined floating-point add/sub/convert.
	OpFPALU
	// OpFPMul is a pipelined floating-point multiply.
	OpFPMul
	// OpFPDiv is an unpipelined floating-point divide.
	OpFPDiv
	// OpLoad reads Size bytes from Addr through the data cache.
	OpLoad
	// OpStore writes Size bytes to Addr through the data cache.
	OpStore
	// OpBranch is a conditional or unconditional control transfer. Taken
	// branches redirect fetch to Target.
	OpBranch
	// OpCall and OpReturn behave like taken branches and additionally mark
	// call boundaries for attribution.
	OpCall
	OpReturn
	// OpTouch installs Addr's line into the cache hierarchy with no
	// timing cost. It models lines a first-touch page fault leaves warm
	// (the OS zeroes fresh pages through the cache), so engineered
	// workloads can reproduce the paper's observation that the
	// microbenchmark's page-touch pass does not itself contribute stalls.
	OpTouch
	numOps
)

var opNames = [numOps]string{
	"nop", "ialu", "imul", "idiv", "falu", "fmul", "fdiv",
	"load", "store", "branch", "call", "ret", "touch",
}

// String returns the mnemonic class name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the op accesses the data cache.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// IsCtl reports whether the op can redirect fetch.
func (o Op) IsCtl() bool { return o == OpBranch || o == OpCall || o == OpReturn }

// RegNone marks an unused register operand.
const RegNone = -1

// Inst is one dynamic instruction in a workload trace. Register numbers are
// abstract names used only for dependence tracking; the generators allocate
// them to model realistic dependence chains.
type Inst struct {
	// PC is the instruction's address, used for instruction-cache fetch.
	PC uint64
	// Op is the resource/behaviour class.
	Op Op
	// Dst is the destination register, or RegNone.
	Dst int16
	// Src1, Src2 are source registers, or RegNone.
	Src1, Src2 int16
	// Addr and Size describe the memory access for loads and stores.
	Addr uint64
	Size uint8
	// Taken and Target describe control flow for branch-class ops.
	Taken  bool
	Target uint64
	// Region tags the instruction with the workload region (function/loop)
	// it belongs to, for attribution ground truth. Zero means unattributed.
	Region uint16
}

// Stream supplies a workload's dynamic instruction trace one instruction at
// a time, so that multi-million-instruction runs never materialise a full
// trace in memory. Next returns false when the trace is exhausted.
type Stream interface {
	Next(inst *Inst) bool
}

// BlockStream is implemented by streams that can expose whole contiguous
// runs of instructions without a per-instruction interface call or copy.
// NextBlock returns the next non-empty run, or an empty slice at end of
// stream; the returned memory is only valid until the next NextBlock or
// Next call. Consumers must behave identically whether they read via
// NextBlock or Next — it is purely a fast path.
type BlockStream interface {
	Stream
	NextBlock() []Inst
}

// SliceStream adapts a pre-built instruction slice to the Stream interface.
// It is mainly used by tests and by small engineered kernels.
type SliceStream struct {
	insts []Inst
	pos   int
}

// NewSliceStream returns a Stream reading from insts.
func NewSliceStream(insts []Inst) *SliceStream {
	return &SliceStream{insts: insts}
}

// Next implements Stream.
func (s *SliceStream) Next(inst *Inst) bool {
	if s.pos >= len(s.insts) {
		return false
	}
	*inst = s.insts[s.pos]
	s.pos++
	return true
}

// NextBlock implements BlockStream: the whole remaining trace in one run.
func (s *SliceStream) NextBlock() []Inst {
	out := s.insts[s.pos:]
	s.pos = len(s.insts)
	return out
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total number of instructions in the underlying slice.
func (s *SliceStream) Len() int { return len(s.insts) }

// ConcatStream chains several streams end to end.
type ConcatStream struct {
	streams []Stream
	idx     int
}

// NewConcatStream returns a Stream that yields each sub-stream in order.
func NewConcatStream(streams ...Stream) *ConcatStream {
	return &ConcatStream{streams: streams}
}

// Next implements Stream.
func (c *ConcatStream) Next(inst *Inst) bool {
	for c.idx < len(c.streams) {
		if c.streams[c.idx].Next(inst) {
			return true
		}
		c.idx++
	}
	return false
}

// FuncStream adapts a generator function to the Stream interface.
type FuncStream func(inst *Inst) bool

// Next implements Stream.
func (f FuncStream) Next(inst *Inst) bool { return f(inst) }

// LimitStream truncates an underlying stream after n instructions.
type LimitStream struct {
	inner Stream
	left  int64
}

// NewLimitStream returns a stream yielding at most n instructions of inner.
func NewLimitStream(inner Stream, n int64) *LimitStream {
	return &LimitStream{inner: inner, left: n}
}

// Next implements Stream.
func (l *LimitStream) Next(inst *Inst) bool {
	if l.left <= 0 {
		return false
	}
	if !l.inner.Next(inst) {
		l.left = 0
		return false
	}
	l.left--
	return true
}

// RegionSpan records, in the ground-truth trace, the cycle range during
// which a given workload region was executing. Spans are produced by the
// processor model as region tags change.
type RegionSpan struct {
	Region     uint16
	StartCycle uint64
	EndCycle   uint64
}
