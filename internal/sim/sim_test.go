package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds must give equal streams")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(7)
	f := r.Fork()
	// Fork and parent streams must differ.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork stream matches parent %d/100 times", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d/10 values seen in 1000 draws", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

// TestRNGNormFloat64Tails checks the ziggurat generator's tail mass and
// symmetry against the standard normal: P(|X|>1), P(|X|>2) and P(|X|>3)
// must match Φ within sampling tolerance, and signs must be balanced.
// These are exactly the regions a mis-built ziggurat table distorts.
func TestRNGNormFloat64Tails(t *testing.T) {
	r := NewRNG(21)
	const n = 400000
	var over1, over2, over3, pos int
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		a := math.Abs(v)
		if a > 1 {
			over1++
		}
		if a > 2 {
			over2++
		}
		if a > 3 {
			over3++
		}
		if v > 0 {
			pos++
		}
	}
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"P(|X|>1)", float64(over1) / n, 0.31731, 0.005},
		{"P(|X|>2)", float64(over2) / n, 0.04550, 0.002},
		{"P(|X|>3)", float64(over3) / n, 0.00270, 0.0006},
		{"P(X>0)", float64(pos) / n, 0.5, 0.005},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %v, want %v ± %v", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate %v < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(11)
	const p = 0.25
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p
	if mean := sum / n; math.Abs(mean-want) > 0.15 {
		t.Fatalf("geometric mean %v, want ~%v", mean, want)
	}
	if NewRNG(1).Geometric(1) != 0 {
		t.Fatal("Geometric(1) must be 0")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw % 50)
		p := NewRNG(uint64(seed)).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpHelpers(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpIntALU.IsMem() {
		t.Fatal("IsMem misclassifies")
	}
	if !OpBranch.IsCtl() || !OpCall.IsCtl() || !OpReturn.IsCtl() || OpLoad.IsCtl() {
		t.Fatal("IsCtl misclassifies")
	}
	if OpLoad.String() != "load" || OpTouch.String() != "touch" {
		t.Fatalf("op names wrong: %v %v", OpLoad, OpTouch)
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Fatalf("unknown op name %q", got)
	}
}

func TestSliceStream(t *testing.T) {
	insts := []Inst{{PC: 4}, {PC: 8}, {PC: 12}}
	s := NewSliceStream(insts)
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
	var in Inst
	var pcs []uint64
	for s.Next(&in) {
		pcs = append(pcs, in.PC)
	}
	if len(pcs) != 3 || pcs[0] != 4 || pcs[2] != 12 {
		t.Fatalf("pcs %v", pcs)
	}
	if s.Next(&in) {
		t.Fatal("exhausted stream must return false")
	}
	s.Reset()
	if !s.Next(&in) || in.PC != 4 {
		t.Fatal("reset must rewind")
	}
}

func TestConcatStream(t *testing.T) {
	a := NewSliceStream([]Inst{{PC: 1}})
	b := NewSliceStream([]Inst{{PC: 2}, {PC: 3}})
	c := NewConcatStream(a, NewSliceStream(nil), b)
	var in Inst
	var pcs []uint64
	for c.Next(&in) {
		pcs = append(pcs, in.PC)
	}
	if len(pcs) != 3 || pcs[0] != 1 || pcs[1] != 2 || pcs[2] != 3 {
		t.Fatalf("concat order %v", pcs)
	}
}

func TestLimitStream(t *testing.T) {
	inner := NewSliceStream([]Inst{{}, {}, {}, {}})
	l := NewLimitStream(inner, 2)
	var in Inst
	n := 0
	for l.Next(&in) {
		n++
	}
	if n != 2 {
		t.Fatalf("limit yielded %d, want 2", n)
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	f := FuncStream(func(in *Inst) bool {
		if n >= 3 {
			return false
		}
		in.PC = uint64(n)
		n++
		return true
	})
	var in Inst
	count := 0
	for f.Next(&in) {
		count++
	}
	if count != 3 {
		t.Fatalf("func stream yielded %d", count)
	}
}
