package faults

import (
	"math"
	"testing"

	"emprof/internal/em"
	"emprof/internal/sim"
)

func testCapture(n int, seed uint64) *em.Capture {
	rng := sim.NewRNG(seed)
	s := make([]float64, n)
	for i := range s {
		s[i] = 1 + 0.05*rng.NormFloat64()
		if s[i] <= 0 {
			s[i] = 0.01
		}
	}
	return &em.Capture{Samples: s, SampleRate: 40e6, ClockHz: 1e9}
}

func TestZeroSpecIsIdentity(t *testing.T) {
	c := testCapture(5000, 1)
	out, rep, err := Apply(c, Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if (Spec{}).Enabled() {
		t.Fatal("zero spec reports Enabled")
	}
	for i := range c.Samples {
		if out.Samples[i] != c.Samples[i] {
			t.Fatalf("sample %d changed under zero spec", i)
		}
	}
	if len(rep.Events) != 0 || rep.DroppedSamples != 0 || rep.FinalGain != 1 {
		t.Fatalf("zero spec produced report %v", rep)
	}
}

func TestApplyDeterministicAndNonMutating(t *testing.T) {
	c := testCapture(20000, 2)
	orig := append([]float64(nil), c.Samples...)
	spec := Spec{
		DropoutRate:   0.01,
		ClipLevel:     1.1,
		GainStepsPerS: 2000,
		DriftDepth:    0.2,
		BurstRate:     0.005,
		NaNRate:       0.001,
		Seed:          42,
	}
	a, ra, err := Apply(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, rb, err := Apply(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Samples {
		if c.Samples[i] != orig[i] {
			t.Fatalf("Apply mutated the input capture at %d", i)
		}
		av, bv := a.Samples[i], b.Samples[i]
		if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, av, bv)
		}
	}
	if ra.String() != rb.String() {
		t.Fatalf("reports diverged: %v vs %v", ra, rb)
	}
	// A different seed must produce a different record.
	spec.Seed = 43
	d, _, err := Apply(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Samples {
		av, dv := a.Samples[i], d.Samples[i]
		if av != dv && !(math.IsNaN(av) && math.IsNaN(dv)) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not change the injection")
	}
}

func TestDropoutFractionMatchesRate(t *testing.T) {
	c := testCapture(400000, 3)
	for _, rate := range []float64{0.002, 0.01, 0.05} {
		out, rep, err := Apply(c, Spec{DropoutRate: rate, DropoutMeanLen: 32, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		zeros := 0
		for _, x := range out.Samples {
			if x == 0 {
				zeros++
			}
		}
		if zeros != rep.DroppedSamples {
			t.Fatalf("rate %v: %d zeros vs %d reported", rate, zeros, rep.DroppedSamples)
		}
		got := float64(zeros) / float64(len(out.Samples))
		if got < rate/2 || got > rate*2 {
			t.Fatalf("rate %v: dropped fraction %v not within 2x", rate, got)
		}
	}
}

func TestClipCeiling(t *testing.T) {
	c := testCapture(50000, 4)
	out, rep, err := Apply(c, Spec{ClipLevel: 1.02, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	clipped := 0
	for i, x := range out.Samples {
		if x > 1.02 {
			t.Fatalf("sample %d = %v above clip level", i, x)
		}
		if x == 1.02 {
			clipped++
		}
	}
	if clipped == 0 || rep.ClippedSamples != clipped {
		t.Fatalf("clipped %d at ceiling, report says %d", clipped, rep.ClippedSamples)
	}
}

func TestGainStepEvents(t *testing.T) {
	c := testCapture(100000, 7)
	out, rep, err := Apply(c, Spec{GainStepsPerS: 1200, Seed: 8}) // ~3 expected
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	gain := 1.0
	for _, e := range rep.Events {
		if e.Kind != EventGainStep {
			t.Fatalf("unexpected event %v", e)
		}
		if e.Factor < 1/5.01 || e.Factor > 5.01 || (e.Factor > 1/2.99 && e.Factor < 2.99) {
			t.Fatalf("step factor %v outside ±[3, 5]", e.Factor)
		}
		gain *= e.Factor
		steps++
	}
	if steps == 0 {
		t.Fatal("no gain step fired at 1200 steps/s over 2.5 ms")
	}
	if math.Abs(gain-rep.FinalGain) > 1e-12 {
		t.Fatalf("FinalGain %v != product of factors %v", rep.FinalGain, gain)
	}
	// After the last step the output must equal input × cumulative gain.
	last := rep.Events[len(rep.Events)-1].Start
	for i := last; i < len(out.Samples); i++ {
		want := c.Samples[i] * rep.FinalGain
		if math.Abs(out.Samples[i]-want) > 1e-9*want {
			t.Fatalf("sample %d: %v, want %v", i, out.Samples[i], want)
		}
	}
}

func TestBurstAndNaNCounts(t *testing.T) {
	c := testCapture(200000, 9)
	out, rep, err := Apply(c, Spec{BurstRate: 0.01, BurstMeanLen: 3, NaNRate: 0.002, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	nans := 0
	for _, x := range out.Samples {
		if math.IsNaN(x) {
			nans++
		}
	}
	if nans != rep.CorruptSamples || nans == 0 {
		t.Fatalf("%d NaNs vs %d reported", nans, rep.CorruptSamples)
	}
	if rep.BurstSamples == 0 {
		t.Fatal("no burst samples at 1% rate")
	}
	got := float64(rep.BurstSamples) / float64(len(out.Samples))
	if got < 0.005 || got > 0.02 {
		t.Fatalf("burst fraction %v, want ~0.01", got)
	}
	// Burst events must cover exactly the reported sample count.
	covered := 0
	for _, e := range rep.Events {
		if e.Kind == EventBurst {
			covered += e.End - e.Start
		}
	}
	if covered != rep.BurstSamples {
		t.Fatalf("burst events cover %d samples, report says %d", covered, rep.BurstSamples)
	}
}

func TestDriftBounded(t *testing.T) {
	c := testCapture(100000, 11)
	out, _, err := Apply(c, Spec{DriftDepth: 0.3, DriftTauS: 1e-3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	moved := false
	for i, x := range out.Samples {
		ratio := x / c.Samples[i]
		if ratio < 1-0.31 || ratio > 1+0.31 {
			t.Fatalf("sample %d drift ratio %v beyond ±DriftDepth", i, ratio)
		}
		if ratio < lo {
			lo = ratio
		}
		if ratio > hi {
			hi = ratio
		}
		if math.Abs(ratio-1) > 0.05 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("drift never moved the gain (ratio range [%v, %v])", lo, hi)
	}
}

func TestProbeBump(t *testing.T) {
	c := testCapture(50000, 13)
	// 40 MS/s → the 0.5 ms bump lands at sample 20000.
	out, rep, err := Apply(c, Spec{ProbeBumpMM: 1.5, ProbeBumpAtS: 0.5e-3, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	wantGain := em.PositionGain(1.5)
	for i, x := range out.Samples {
		want := c.Samples[i]
		if i >= 20000 {
			want *= wantGain
		}
		if math.Abs(x-want) > 1e-12*want {
			t.Fatalf("sample %d: %v, want %v", i, x, want)
		}
	}
	if len(rep.Events) != 1 || rep.Events[0].Kind != EventProbeBump || rep.Events[0].Start != 20000 {
		t.Fatalf("events %+v, want one probe-bump at 20000", rep.Events)
	}
	if f := rep.Events[0].Factor; math.Abs(f-wantGain) > 1e-12 {
		t.Fatalf("bump factor %v, want %v", f, wantGain)
	}
	if rep.FinalProbeOffsetMM != 1.5 || rep.MaxProbeOffsetMM != 1.5 {
		t.Fatalf("report offsets %v/%v, want 1.5/1.5", rep.FinalProbeOffsetMM, rep.MaxProbeOffsetMM)
	}
}

func TestProbeDriftBounded(t *testing.T) {
	c := testCapture(200000, 15)
	out, rep, err := Apply(c, Spec{ProbeDriftMM: 1.2, ProbeDriftTauS: 1e-3, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	// The offset is clamped to ±ProbeDriftMM, so the gain never falls
	// below the coupling at the full excursion and never exceeds 1.
	floor := em.PositionGain(1.2)
	moved := false
	for i, x := range out.Samples {
		ratio := x / c.Samples[i]
		if ratio < floor-1e-12 || ratio > 1+1e-12 {
			t.Fatalf("sample %d gain ratio %v outside [%v, 1]", i, ratio, floor)
		}
		if ratio < 0.95 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("positional drift never attenuated the capture by 5%")
	}
	if rep.MaxProbeOffsetMM <= 0 || rep.MaxProbeOffsetMM > 1.2 {
		t.Fatalf("max probe offset %v outside (0, 1.2]", rep.MaxProbeOffsetMM)
	}
	if math.Abs(rep.FinalProbeOffsetMM) > rep.MaxProbeOffsetMM {
		t.Fatalf("final offset %v beyond max %v", rep.FinalProbeOffsetMM, rep.MaxProbeOffsetMM)
	}
}

func TestValidation(t *testing.T) {
	bad := []Spec{
		{DropoutRate: -0.1},
		{DropoutRate: 1},
		{DropoutRate: 0.01, DropoutMeanLen: 0.5},
		{ClipLevel: -1},
		{GainStepsPerS: -1},
		{GainStepsPerS: 1, GainStepMin: 0.5},
		{GainStepsPerS: 1, GainStepMin: 4, GainStepMax: 2},
		{DriftDepth: 1},
		{DriftDepth: -0.1},
		{ProbeDriftMM: -1},
		{ProbeDriftMM: math.NaN()},
		{ProbeBumpMM: math.Inf(1)},
		{ProbeBumpMM: 1, ProbeBumpAtS: -1},
		{ProbeDriftMM: 60, ProbeBumpMM: 50},
		{BurstRate: 1},
		{NaNRate: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
	if _, err := NewInjector(Spec{}, 0); err == nil {
		t.Error("zero sample rate accepted")
	}
}

// TestProcessBlockMatchesProcess drives the injector block-wise (varying
// and zero-length blocks, in place and out of place) and requires the
// outputs and ground-truth reports to match the pure per-sample chain
// exactly — including for the zero spec, whose block path takes the
// vectorized gain-only shortcut, and for specs mid-burst at a block edge.
func TestProcessBlockMatchesProcess(t *testing.T) {
	specs := []Spec{
		{},
		{GainStepsPerS: 500, Seed: 3},
		{DropoutRate: 0.01, DropoutMeanLen: 8, Seed: 4},
		// A bump alone exercises the fast-path gate: scalar while the bump
		// is armed, vectorized again (with the folded coupling gain) once
		// it has fired.
		{ProbeBumpMM: 2, ProbeBumpAtS: 0.18e-3, Seed: 5},
		{ProbeDriftMM: 0.8, ProbeDriftTauS: 0.1e-3, ProbeBumpMM: 1, ProbeBumpAtS: 0.1e-3, Seed: 6},
		{
			DropoutRate:   0.01,
			ClipLevel:     1.1,
			GainStepsPerS: 2000,
			DriftDepth:    0.2,
			BurstRate:     0.02,
			BurstMeanLen:  5,
			NaNRate:       0.002,
			Seed:          42,
		},
	}
	c := testCapture(15000, 9)
	for si, spec := range specs {
		ref, err := NewInjector(spec, c.SampleRate)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, len(c.Samples))
		for i, x := range c.Samples {
			want[i] = ref.Process(x)
		}

		inj, err := NewInjector(spec, c.SampleRate)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, len(c.Samples))
		copy(got, c.Samples)
		rng := sim.NewRNG(uint64(si) + 1)
		pos := 0
		for pos < len(got) {
			n := rng.Intn(700)
			if n > len(got)-pos {
				n = len(got) - pos
			}
			if rng.Intn(3) == 0 {
				inj.ProcessBlock(got[pos:pos+n], got[pos:pos+n]) // in place
			} else {
				out := inj.ProcessBlock(got[pos:pos+n], nil)
				copy(got[pos:pos+n], out)
			}
			pos += n
		}
		for i := range want {
			same := got[i] == want[i] || (math.IsNaN(got[i]) && math.IsNaN(want[i]))
			if !same {
				t.Fatalf("spec %d sample %d: block %v, scalar %v", si, i, got[i], want[i])
			}
		}
		ra, rb := ref.Report(), inj.Report()
		if ra.DroppedSamples != rb.DroppedSamples || ra.BurstSamples != rb.BurstSamples ||
			ra.ClippedSamples != rb.ClippedSamples || ra.CorruptSamples != rb.CorruptSamples ||
			ra.FinalGain != rb.FinalGain || len(ra.Events) != len(rb.Events) ||
			ra.FinalProbeOffsetMM != rb.FinalProbeOffsetMM ||
			ra.MaxProbeOffsetMM != rb.MaxProbeOffsetMM {
			t.Fatalf("spec %d: reports diverge: %+v vs %+v", si, ra, rb)
		}
	}
}
