// Package faults injects acquisition impairments into EM captures: the
// ways a real probe + digitizer chain breaks that the clean synthesis in
// internal/em does not model. Each impairment is composable, independently
// switchable, and fully deterministic under a seed, so robustness tests
// and experiments are reproducible bit-for-bit.
//
// The modelled impairment classes, in the order they are applied to each
// sample:
//
//  1. discrete receiver gain steps (AGC relocking, attenuator switches);
//  2. slow probe-coupling drift, an Ornstein–Uhlenbeck gain process —
//     rougher than internal/em's sinusoidal supply drift, standing in for
//     a probe physically moving relative to the device;
//  3. probe-position faults: slow positional drift (an OU process on the
//     probe's lateral offset in millimetres, e.g. a slipping fixture) and
//     a probe bump (a step displacement at a set time). Both modulate the
//     capture's gain along the shared displacement→gain curve
//     em.PositionGain, so a 1.5 mm bump costs exactly what a capture
//     synthesized 1.5 mm off the sweet spot loses in amplitude;
//  4. impulsive RF bursts (nearby transmitters, motor ignition) added at
//     a multiple of the local signal level;
//  5. ADC saturation: magnitudes clamped to a fixed ceiling;
//  6. sample dropouts: the digitizer loses runs of samples, which appear
//     zero-filled in the record;
//  7. outright corruption: samples replaced by NaN (transfer errors).
//
// Injection never mutates the input capture: Apply clones first (see
// em.Capture.Clone). The Injector form processes one sample at a time and
// can sit inside a streaming acquisition chain.
package faults

import (
	"fmt"
	"math"

	"emprof/internal/em"
	"emprof/internal/sim"
)

// Spec selects and parameterises the impairments. The zero value injects
// nothing.
type Spec struct {
	// DropoutRate is the expected fraction of samples lost to dropouts
	// (zero-filled gaps), in [0, 1). DropoutMeanLen is the mean gap
	// length in samples (default 64).
	DropoutRate    float64
	DropoutMeanLen float64

	// ClipLevel, when > 0, clamps every magnitude to at most this value
	// (ADC full scale).
	ClipLevel float64

	// GainStepsPerS is the expected number of discrete receiver gain
	// steps per second. Each step multiplies the gain by a factor drawn
	// uniformly in [GainStepMin, GainStepMax] (defaults 3–5), inverted
	// with probability ½ so the gain random-walks both up and down.
	GainStepsPerS float64
	GainStepMin   float64
	GainStepMax   float64

	// DriftDepth, when > 0, enables Ornstein–Uhlenbeck probe-coupling
	// drift: a zero-mean gain modulation with stationary deviation about
	// DriftDepth/2 and correlation time DriftTauS seconds (default 10 ms),
	// clamped to ±DriftDepth. DriftDepth must lie in [0, 1).
	DriftDepth float64
	DriftTauS  float64

	// ProbeDriftMM, when > 0, enables slow positional probe drift: an
	// Ornstein–Uhlenbeck process on the probe's lateral offset with
	// stationary deviation about ProbeDriftMM/2 mm and correlation time
	// ProbeDriftTauS seconds (default 50 ms — fixtures slip slower than
	// coupling flutters), clamped to ±ProbeDriftMM. The offset modulates
	// gain along em.PositionGain.
	ProbeDriftMM   float64
	ProbeDriftTauS float64

	// ProbeBumpMM, when non-zero, displaces the probe by that many
	// millimetres in one step at ProbeBumpAtS seconds into the capture
	// (the fixture was knocked). The displacement persists to the end of
	// the record and stacks with any positional drift.
	ProbeBumpMM  float64
	ProbeBumpAtS float64

	// BurstRate is the expected fraction of samples hit by impulsive RF
	// bursts, BurstMeanLen the mean burst length in samples (default 3),
	// and BurstAmp the burst amplitude as a multiple of the running
	// signal level (default 6).
	BurstRate    float64
	BurstMeanLen float64
	BurstAmp     float64

	// NaNRate is the per-sample probability of corruption to NaN.
	NaNRate float64

	// Seed drives all randomness; the same spec + seed + input always
	// produces the same output.
	Seed uint64
}

// withDefaults fills unset secondary parameters.
func (s Spec) withDefaults() Spec {
	if s.DropoutMeanLen <= 0 {
		s.DropoutMeanLen = 64
	}
	if s.GainStepMin <= 0 {
		s.GainStepMin = 3
	}
	if s.GainStepMax <= 0 {
		s.GainStepMax = 5
	}
	if s.DriftTauS <= 0 {
		s.DriftTauS = 10e-3
	}
	if s.ProbeDriftTauS <= 0 {
		s.ProbeDriftTauS = 50e-3
	}
	if s.BurstMeanLen <= 0 {
		s.BurstMeanLen = 3
	}
	if s.BurstAmp <= 0 {
		s.BurstAmp = 6
	}
	return s
}

// Validate checks the spec (after defaulting).
func (s Spec) Validate() error {
	d := s.withDefaults()
	if d.DropoutRate < 0 || d.DropoutRate >= 1 {
		return fmt.Errorf("faults: dropout rate %v out of [0, 1)", d.DropoutRate)
	}
	if d.DropoutMeanLen < 1 {
		return fmt.Errorf("faults: dropout mean length %v < 1", d.DropoutMeanLen)
	}
	if d.ClipLevel < 0 {
		return fmt.Errorf("faults: clip level %v < 0", d.ClipLevel)
	}
	if d.GainStepsPerS < 0 {
		return fmt.Errorf("faults: gain step rate %v < 0", d.GainStepsPerS)
	}
	if d.GainStepMin < 1 || d.GainStepMax < d.GainStepMin {
		return fmt.Errorf("faults: gain step factors [%v, %v] invalid (need 1 <= min <= max)", d.GainStepMin, d.GainStepMax)
	}
	if d.DriftDepth < 0 || d.DriftDepth >= 1 {
		return fmt.Errorf("faults: drift depth %v out of [0, 1)", d.DriftDepth)
	}
	if d.ProbeDriftMM < 0 || math.IsNaN(d.ProbeDriftMM) || math.IsInf(d.ProbeDriftMM, 0) {
		return fmt.Errorf("faults: probe drift %v mm invalid (need finite >= 0)", d.ProbeDriftMM)
	}
	if math.IsNaN(d.ProbeBumpMM) || math.IsInf(d.ProbeBumpMM, 0) {
		return fmt.Errorf("faults: probe bump %v mm not finite", d.ProbeBumpMM)
	}
	if d.ProbeBumpAtS < 0 || math.IsNaN(d.ProbeBumpAtS) {
		return fmt.Errorf("faults: probe bump time %v s < 0", d.ProbeBumpAtS)
	}
	if worst := d.ProbeDriftMM + math.Abs(d.ProbeBumpMM); worst > 100 {
		return fmt.Errorf("faults: worst-case probe offset %.1f mm out of range (near field is gone past 100 mm)", worst)
	}
	if d.BurstRate < 0 || d.BurstRate >= 1 {
		return fmt.Errorf("faults: burst rate %v out of [0, 1)", d.BurstRate)
	}
	if d.BurstMeanLen < 1 {
		return fmt.Errorf("faults: burst mean length %v < 1", d.BurstMeanLen)
	}
	if d.NaNRate < 0 || d.NaNRate >= 1 {
		return fmt.Errorf("faults: NaN rate %v out of [0, 1)", d.NaNRate)
	}
	return nil
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.DropoutRate > 0 || s.ClipLevel > 0 || s.GainStepsPerS > 0 ||
		s.DriftDepth > 0 || s.ProbeDriftMM > 0 || s.ProbeBumpMM != 0 ||
		s.BurstRate > 0 || s.NaNRate > 0
}

// EventKind labels one injected impairment event.
type EventKind string

const (
	EventDropout   EventKind = "dropout"
	EventGainStep  EventKind = "gain-step"
	EventBurst     EventKind = "burst"
	EventProbeBump EventKind = "probe-bump"
)

// Event records one injected impairment: a sample range [Start, End) and,
// for gain steps and probe bumps, the multiplicative factor applied from
// Start onwards (for a bump, the ratio of coupling gain after/before the
// displacement).
type Event struct {
	Kind       EventKind
	Start, End int
	Factor     float64
}

// Report tallies everything an Injector did, for ground-truth comparison
// against the profiler's recovered Quality record.
type Report struct {
	// Events lists dropouts, gain steps and bursts in time order.
	Events []Event
	// Per-class sample counts.
	DroppedSamples int
	ClippedSamples int
	BurstSamples   int
	CorruptSamples int
	// FinalGain is the cumulative gain-step factor at the end of the run
	// (1 when no step fired).
	FinalGain float64
	// FinalProbeOffsetMM and MaxProbeOffsetMM record the probe's lateral
	// displacement (drift + bump, signed final / absolute max) when the
	// positional faults are enabled; both are 0 otherwise.
	FinalProbeOffsetMM float64
	MaxProbeOffsetMM   float64
}

// String summarises the report.
func (r *Report) String() string {
	s := fmt.Sprintf("%d events (%d dropped, %d clipped, %d burst, %d NaN samples; final gain %.3g)",
		len(r.Events), r.DroppedSamples, r.ClippedSamples, r.BurstSamples, r.CorruptSamples, r.FinalGain)
	if r.MaxProbeOffsetMM > 0 {
		s += fmt.Sprintf(" (probe offset final %.2f mm, max %.2f mm)", r.FinalProbeOffsetMM, r.MaxProbeOffsetMM)
	}
	return s
}

// Injector applies a Spec to a sample stream, one magnitude at a time.
type Injector struct {
	spec Spec
	rng  *sim.RNG

	// per-sample start probabilities and geometric continuation params
	pDrop, pBurst, pStep, pNaN float64
	contDrop, contBurst        float64

	gain float64 // cumulative gain-step factor

	// OU drift state
	drift      float64
	driftDecay float64
	driftSigma float64

	// probe-position state: OU positional drift (mm), the pending bump,
	// and the cached coupling gain at the current total offset
	probeOff   float64
	probeDecay float64
	probeSigma float64
	bumpOff    float64
	bumpAt     int
	bumpArmed  bool
	posGain    float64

	// running signal-level EMA (post-gain), scales burst amplitude
	level     float64
	haveLevel bool

	dropLeft, burstLeft int
	n                   int // samples processed

	rep Report
}

// NewInjector builds an injector for a stream at the given sample rate.
func NewInjector(spec Spec, sampleRate float64) (*Injector, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("faults: sample rate %v <= 0", sampleRate)
	}
	s := spec.withDefaults()
	inj := &Injector{
		spec: s,
		rng:  sim.NewRNG(s.Seed ^ 0xfa017ab1e),
		gain: 1,
		rep:  Report{FinalGain: 1},
	}
	// A gap of mean length L covering fraction R of samples starts with
	// per-sample probability R/L (outside a gap); likewise for bursts.
	inj.pDrop = s.DropoutRate / s.DropoutMeanLen
	inj.contDrop = 1 / s.DropoutMeanLen
	inj.pBurst = s.BurstRate / s.BurstMeanLen
	inj.contBurst = 1 / s.BurstMeanLen
	inj.pStep = s.GainStepsPerS / sampleRate
	inj.pNaN = s.NaNRate
	if s.DriftDepth > 0 {
		tau := s.DriftTauS * sampleRate // correlation time in samples
		if tau < 1 {
			tau = 1
		}
		inj.driftDecay = 1 / tau
		// Stationary std DriftDepth/2 for the discretised OU process.
		inj.driftSigma = (s.DriftDepth / 2) * math.Sqrt(2/tau)
	}
	inj.posGain = 1
	if s.ProbeDriftMM > 0 {
		tau := s.ProbeDriftTauS * sampleRate
		if tau < 1 {
			tau = 1
		}
		inj.probeDecay = 1 / tau
		// Stationary std ProbeDriftMM/2, same discipline as DriftDepth.
		inj.probeSigma = (s.ProbeDriftMM / 2) * math.Sqrt(2/tau)
	}
	if s.ProbeBumpMM != 0 {
		inj.bumpAt = int(s.ProbeBumpAtS * sampleRate)
		inj.bumpArmed = true
	}
	return inj, nil
}

// Process applies the impairment chain to one magnitude sample.
func (inj *Injector) Process(x float64) float64 {
	i := inj.n
	inj.n++

	// 1. Discrete receiver gain step.
	if inj.pStep > 0 && inj.rng.Float64() < inj.pStep {
		f := inj.spec.GainStepMin + (inj.spec.GainStepMax-inj.spec.GainStepMin)*inj.rng.Float64()
		if inj.rng.Float64() < 0.5 {
			f = 1 / f
		}
		inj.gain *= f
		inj.rep.FinalGain = inj.gain
		inj.rep.Events = append(inj.rep.Events, Event{Kind: EventGainStep, Start: i, End: i, Factor: f})
	}

	// 2. OU probe-coupling drift.
	g := inj.gain
	if inj.driftSigma > 0 {
		inj.drift += -inj.driftDecay*inj.drift + inj.driftSigma*inj.rng.NormFloat64()
		if d := inj.spec.DriftDepth; inj.drift > d {
			inj.drift = d
		} else if inj.drift < -d {
			inj.drift = -d
		}
		g *= 1 + inj.drift
	}

	// 3. Probe position: positional OU drift plus a one-time bump, both
	// attenuating the sample along the shared displacement→gain curve.
	if inj.probeSigma > 0 || inj.bumpArmed || inj.bumpOff != 0 {
		moved := false
		if inj.probeSigma > 0 {
			inj.probeOff += -inj.probeDecay*inj.probeOff + inj.probeSigma*inj.rng.NormFloat64()
			if d := inj.spec.ProbeDriftMM; inj.probeOff > d {
				inj.probeOff = d
			} else if inj.probeOff < -d {
				inj.probeOff = -d
			}
			moved = true
		}
		if inj.bumpArmed && i >= inj.bumpAt {
			inj.bumpArmed = false
			before := em.PositionGain(math.Abs(inj.probeOff))
			inj.bumpOff = inj.spec.ProbeBumpMM
			after := em.PositionGain(math.Abs(inj.probeOff + inj.bumpOff))
			inj.rep.Events = append(inj.rep.Events,
				Event{Kind: EventProbeBump, Start: i, End: i, Factor: after / before})
			moved = true
		}
		if moved {
			off := inj.probeOff + inj.bumpOff
			inj.posGain = em.PositionGain(math.Abs(off))
			inj.rep.FinalProbeOffsetMM = off
			if a := math.Abs(off); a > inj.rep.MaxProbeOffsetMM {
				inj.rep.MaxProbeOffsetMM = a
			}
		}
		g *= inj.posGain
	}
	x *= g

	// Running level estimate for burst scaling (finite samples only).
	if !math.IsNaN(x) && !math.IsInf(x, 0) {
		if !inj.haveLevel {
			inj.level, inj.haveLevel = x, true
		} else {
			inj.level += (x - inj.level) / 256
		}
	}

	// 4. Impulsive RF burst.
	if inj.burstLeft > 0 {
		inj.burstLeft--
		x += inj.spec.BurstAmp * inj.level * (0.5 + math.Abs(inj.rng.NormFloat64()))
		inj.rep.BurstSamples++
		inj.lastEvent(EventBurst).End = i + 1
	} else if inj.pBurst > 0 && inj.rng.Float64() < inj.pBurst {
		inj.burstLeft = inj.rng.Geometric(inj.contBurst)
		x += inj.spec.BurstAmp * inj.level * (0.5 + math.Abs(inj.rng.NormFloat64()))
		inj.rep.BurstSamples++
		inj.rep.Events = append(inj.rep.Events, Event{Kind: EventBurst, Start: i, End: i + 1})
	}

	// 5. ADC saturation.
	if lv := inj.spec.ClipLevel; lv > 0 && x > lv {
		x = lv
		inj.rep.ClippedSamples++
	}

	// 6. Digitizer dropout (zero-filled).
	if inj.dropLeft > 0 {
		inj.dropLeft--
		inj.rep.DroppedSamples++
		inj.lastEvent(EventDropout).End = i + 1
		return 0
	}
	if inj.pDrop > 0 && inj.rng.Float64() < inj.pDrop {
		inj.dropLeft = inj.rng.Geometric(inj.contDrop)
		inj.rep.DroppedSamples++
		inj.rep.Events = append(inj.rep.Events, Event{Kind: EventDropout, Start: i, End: i + 1})
		return 0
	}

	// 7. Corruption.
	if inj.pNaN > 0 && inj.rng.Float64() < inj.pNaN {
		inj.rep.CorruptSamples++
		return math.NaN()
	}
	return x
}

// ProcessBlock applies the impairment chain to a block of samples, writing
// into out (allocated if nil or too small; out may alias in) and returning
// it. Output and report are identical to calling Process per sample. When
// no stochastic impairment is armed — every rate zero and no burst or
// dropout run open — the chain provably reduces to the static gain, and
// the block collapses to one vectorized multiply with no RNG traffic;
// otherwise the scalar chain runs per sample, consuming the same draws in
// the same order.
func (inj *Injector) ProcessBlock(in, out []float64) []float64 {
	n := len(in)
	if out == nil || cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	if inj.pStep == 0 && inj.driftSigma == 0 && inj.probeSigma == 0 && !inj.bumpArmed &&
		inj.burstLeft == 0 && inj.pBurst == 0 &&
		inj.dropLeft == 0 && inj.pDrop == 0 && inj.pNaN == 0 && inj.spec.ClipLevel == 0 {
		// The level tracker is unobservable with bursts disabled, so it
		// need not advance here. A fired probe bump is a constant offset,
		// so its coupling gain folds into the static multiply.
		g := inj.gain * inj.posGain
		for i, x := range in {
			out[i] = x * g
		}
		inj.n += n
		return out
	}
	for i, x := range in {
		out[i] = inj.Process(x)
	}
	return out
}

// lastEvent returns the most recent event of the given kind so an ongoing
// run can extend its End. It assumes such an event exists (the run was
// opened when the event was appended).
func (inj *Injector) lastEvent(kind EventKind) *Event {
	for j := len(inj.rep.Events) - 1; j >= 0; j-- {
		if inj.rep.Events[j].Kind == kind {
			return &inj.rep.Events[j]
		}
	}
	panic("faults: no open event of kind " + string(kind))
}

// Report returns the impairments injected so far. The returned value
// shares the Events slice with the injector; inject everything first.
func (inj *Injector) Report() *Report {
	r := inj.rep
	return &r
}

// Apply injects the spec into a copy of the capture and returns the
// impaired copy plus a ground-truth report. The input capture is never
// modified.
func Apply(c *em.Capture, spec Spec) (*em.Capture, *Report, error) {
	inj, err := NewInjector(spec, c.SampleRate)
	if err != nil {
		return nil, nil, err
	}
	out := c.Clone()
	inj.ProcessBlock(out.Samples, out.Samples)
	return out, inj.Report(), nil
}
