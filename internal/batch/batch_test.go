package batch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderedResults(t *testing.T) {
	jobs := make([]int, 100)
	for i := range jobs {
		jobs[i] = i * 3
	}
	res, err := Run(context.Background(), jobs, 7, func(_ context.Context, i, j int) (int, error) {
		return j * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(res), len(jobs))
	}
	for i, r := range res {
		if r.Index != i || r.Err != nil || r.Value != i*6 {
			t.Fatalf("result %d = %+v, want value %d", i, r, i*6)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	jobs := make([]int, 40)
	_, err := Run(context.Background(), jobs, workers, func(_ context.Context, i, _ int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, want <= %d", p, workers)
	}
}

func TestRunIsolatesErrorsAndPanics(t *testing.T) {
	boom := errors.New("boom")
	res, err := Run(context.Background(), []int{0, 1, 2, 3}, 2, func(_ context.Context, i, _ int) (string, error) {
		switch i {
		case 1:
			return "", boom
		case 2:
			panic("kaboom")
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatalf("run error %v; per-job failures must not fail the sweep", err)
	}
	if res[0].Err != nil || res[0].Value != "ok" || res[3].Err != nil || res[3].Value != "ok" {
		t.Fatalf("healthy jobs affected: %+v / %+v", res[0], res[3])
	}
	if !errors.Is(res[1].Err, boom) {
		t.Fatalf("job 1 error = %v, want %v", res[1].Err, boom)
	}
	if res[2].Err == nil || !strings.Contains(res[2].Err.Error(), "kaboom") {
		t.Fatalf("job 2 error = %v, want recovered panic", res[2].Err)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	var once sync.Once
	jobs := make([]int, 50)
	res, err := Run(ctx, jobs, 2, func(_ context.Context, i, _ int) (int, error) {
		started.Add(1)
		once.Do(cancel)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run error = %v, want context.Canceled", err)
	}
	if got := started.Load(); got == 50 {
		t.Fatal("cancellation did not stop dispatch")
	}
	skipped := 0
	for _, r := range res {
		if errors.Is(r.Err, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no job recorded the cancellation error")
	}
	if int(started.Load())+skipped != len(jobs) {
		t.Fatalf("started %d + skipped %d != %d jobs", started.Load(), skipped, len(jobs))
	}
}

func TestRunEmptyAndDegenerate(t *testing.T) {
	res, err := Run(context.Background(), []int(nil), 4, func(_ context.Context, i, _ int) (int, error) { return 0, nil })
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: %v, %d results", err, len(res))
	}
	if _, err := Run[int, int](context.Background(), []int{1}, 4, nil); err == nil {
		t.Fatal("nil fn must error")
	}
	// More workers than jobs must not deadlock or duplicate work.
	var n atomic.Int64
	res, err = Run(context.Background(), []int{1, 2}, 16, func(_ context.Context, i, _ int) (int, error) {
		n.Add(1)
		return i, nil
	})
	if err != nil || n.Load() != 2 || res[1].Value != 1 {
		t.Fatalf("tiny run: err=%v ran=%d res=%+v", err, n.Load(), res)
	}
}

func TestGridExpansion(t *testing.T) {
	g := Grid{
		Devices:      []string{"olimex", "samsung"},
		Workloads:    []string{"micro:64:8", "spec:mcf", "boot"},
		Seeds:        []uint64{1, 2},
		BandwidthsHz: []float64{0, 80e6},
	}
	pts := g.Points()
	if len(pts) != g.Size() || len(pts) != 2*3*2*2 {
		t.Fatalf("expanded %d points, want %d", len(pts), 2*3*2*2)
	}
	seen := map[string]bool{}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
		key := fmt.Sprintf("%s/%s/%d/%v", p.Device, p.Workload, p.Seed, p.BandwidthHz)
		if seen[key] {
			t.Fatalf("duplicate point %s", key)
		}
		seen[key] = true
	}
	// Device-major deterministic order.
	if pts[0].Device != "olimex" || pts[len(pts)-1].Device != "samsung" {
		t.Fatal("expansion order changed")
	}

	// Empty dimensions collapse to one entry each.
	one := Grid{Workloads: []string{"boot"}}
	if got := one.Points(); len(got) != 1 || got[0].Device != "" || got[0].Seed != 0 {
		t.Fatalf("default expansion = %+v", got)
	}
}

func TestMixSeedDeterministicAndSpread(t *testing.T) {
	a := MixSeed(1, 2, 3)
	if a != MixSeed(1, 2, 3) {
		t.Fatal("MixSeed is not deterministic")
	}
	if a == MixSeed(1, 2, 4) || a == MixSeed(3, 2, 1) || a == MixSeed(1, 2) {
		t.Fatal("MixSeed collides on nearby coordinates")
	}
	if MixSeedString("olimex") == MixSeedString("samsung") {
		t.Fatal("MixSeedString collides")
	}
	if MixSeed(MixSeedString("a")) == MixSeed(MixSeedString("b")) {
		t.Fatal("string-derived seeds collide")
	}
}
