// Package batch is the sweep runner behind emprof.RunSweep: it executes
// grids of independent simulate→inject→analyze jobs (device × workload ×
// seed × bandwidth) on a bounded worker pool. The concurrency machinery
// lives here, decoupled from what a job actually does, so commands and
// tests can drive arbitrary pipelines through it.
//
// Guarantees:
//
//   - Ordered collection: results[i] always corresponds to jobs[i], no
//     matter which worker ran it or when it finished.
//   - Error isolation: one job failing (or panicking) never takes down the
//     sweep; the failure is recorded in that job's Result and every other
//     job still runs.
//   - Cancellation: when the context is cancelled, jobs that have not
//     started are marked with the context error instead of running, and
//     Run returns that error alongside the partial results.
//   - Deterministic seeding: MixSeed derives per-job seeds from stable
//     coordinates (never from shared RNG state or completion order), so a
//     sweep's outputs are independent of scheduling.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Result couples one job's outcome with its position in the input order.
type Result[T any] struct {
	// Index is the job's position in the slice passed to Run.
	Index int
	// Value is the job's result; meaningful only when Err is nil.
	Value T
	// Err is the job's failure: the error fn returned, a recovered panic,
	// or the context error for jobs skipped after cancellation.
	Err error
}

// Run executes fn over every job on a pool of at most workers goroutines
// (<= 0 uses runtime.GOMAXPROCS(0)) and returns the results in input
// order. It blocks until every dispatched job has finished. The returned
// error is nil on a full sweep and ctx.Err() when the sweep was cut short;
// per-job failures are reported in the results, never as the run error.
func Run[J, T any](ctx context.Context, jobs []J, workers int, fn func(ctx context.Context, index int, job J) (T, error)) ([]Result[T], error) {
	if fn == nil {
		return nil, fmt.Errorf("batch: nil job function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result[T], len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = Result[T]{Index: i}
				// A cancelled sweep stops starting jobs but still drains
				// the queue so every slot is filled deterministically.
				if err := ctx.Err(); err != nil {
					results[i].Err = err
					continue
				}
				results[i].Value, results[i].Err = runOne(ctx, i, jobs[i], fn)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, ctx.Err()
}

// runOne invokes fn with panic isolation: a panicking job is converted
// into that job's error instead of crashing the sweep.
func runOne[J, T any](ctx context.Context, i int, job J, fn func(context.Context, int, J) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("batch: job %d panicked: %v", i, r)
		}
	}()
	return fn(ctx, i, job)
}

// Point is one cell of a sweep grid.
type Point struct {
	// Index is the cell's position in Grid.Points() order.
	Index int
	// Device and Workload name the target and the instruction stream.
	Device, Workload string
	// Seed is the cell's simulation seed (taken verbatim from Grid.Seeds,
	// so runs with the same seed stay comparable across devices).
	Seed uint64
	// BandwidthHz is the measurement bandwidth; 0 keeps the device default.
	BandwidthHz float64
}

// Grid enumerates a device × workload × seed × bandwidth cross product.
// Empty dimensions contribute a single zero-valued entry, so e.g. a grid
// with only Devices and Workloads set still expands.
type Grid struct {
	Devices      []string
	Workloads    []string
	Seeds        []uint64
	BandwidthsHz []float64
}

// Size returns the number of cells the grid expands to.
func (g Grid) Size() int {
	return dim(len(g.Devices)) * dim(len(g.Workloads)) * dim(len(g.Seeds)) * dim(len(g.BandwidthsHz))
}

// Points expands the grid in deterministic order: devices outermost, then
// workloads, seeds, and bandwidths.
func (g Grid) Points() []Point {
	devs := orDefault(g.Devices, "")
	wls := orDefault(g.Workloads, "")
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	bws := g.BandwidthsHz
	if len(bws) == 0 {
		bws = []float64{0}
	}
	pts := make([]Point, 0, g.Size())
	for _, d := range devs {
		for _, w := range wls {
			for _, s := range seeds {
				for _, b := range bws {
					pts = append(pts, Point{
						Index:       len(pts),
						Device:      d,
						Workload:    w,
						Seed:        s,
						BandwidthHz: b,
					})
				}
			}
		}
	}
	return pts
}

func dim(n int) int {
	if n == 0 {
		return 1
	}
	return n
}

func orDefault(s []string, def string) []string {
	if len(s) == 0 {
		return []string{def}
	}
	return s
}

// MixSeed folds the parts into one well-scrambled 64-bit seed using
// splitmix64 steps. Jobs that need secondary randomness (fault injection
// on top of a simulation seed, per-cell jitter) derive it from stable
// coordinates via MixSeed so results never depend on scheduling.
func MixSeed(parts ...uint64) uint64 {
	z := uint64(0x243f6a8885a308d3)
	for _, p := range parts {
		z += 0x9e3779b97f4a7c15 + p
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

// MixSeedString folds a string coordinate (a device or workload name)
// into MixSeed input form via FNV-1a.
func MixSeedString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
