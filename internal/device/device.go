// Package device holds the configurations of the paper's experimental
// targets (Table I): the Alcatel Ideal phone (Qualcomm MSM8909,
// Cortex-A7, 1.1 GHz, 1 MB LLC), the Samsung Galaxy Centura (MSM7625A,
// Cortex-A5, 800 MHz, 256 KB LLC, hardware prefetcher) and the Olimex
// A13-OLinuXino-MICRO IoT board (Allwinner A13, Cortex-A8, 1.008 GHz,
// 256 KB LLC), plus the SESC-style validation configuration ("a 4-wide
// in-order processor with two levels of caches with random replacement").
package device

import (
	"fmt"
	"math"
	"strings"

	"emprof/internal/cpu"
	"emprof/internal/mem"
	"emprof/internal/mem/cache"
	"emprof/internal/mem/dram"
	"emprof/internal/power"
)

// EMPath describes the acquisition path between the device and the
// receiver: how strongly the probe couples, how the signal degrades, and
// the default measurement bandwidth.
type EMPath struct {
	// ProbeGain is the multiplicative coupling factor of the near-field
	// probe ("even small changes in probe/antenna position can
	// dramatically change the overall magnitude of the received signal").
	ProbeGain float64
	// SNRdB is the signal-to-noise ratio of the acquisition.
	SNRdB float64
	// DriftPeriodS and DriftDepth model slow power-supply variation: the
	// received magnitude is scaled by 1 + DriftDepth*sin(2π t /
	// DriftPeriodS).
	DriftPeriodS float64
	DriftDepth   float64
	// DefaultBandwidthHz is the measurement bandwidth used unless an
	// experiment sweeps it (the paper uses 40 MHz around the clock).
	DefaultBandwidthHz float64
}

// Device bundles everything needed to simulate one target.
type Device struct {
	// Name as used in the paper's tables.
	Name string
	// SoC and CoreName are descriptive (Table I).
	SoC      string
	CoreName string
	// Cores is the core count (we model a single active core, as the
	// paper's single-threaded benchmarks exercise).
	Cores int
	// CPU is the core model configuration.
	CPU cpu.Config
	// Mem is the memory system configuration.
	Mem mem.Config
	// EM is the acquisition path.
	EM EMPath
}

// ClockHz returns the core clock.
func (d Device) ClockHz() float64 { return d.CPU.ClockHz }

// CyclesPerSecond converts seconds to cycles on this device.
func (d Device) Cycles(seconds float64) uint64 {
	return uint64(math.Round(seconds * d.CPU.ClockHz))
}

// Seconds converts a cycle count to wall time on this device.
func (d Device) Seconds(cycles uint64) float64 {
	return float64(cycles) / d.CPU.ClockHz
}

// Validate checks all nested configurations.
func (d Device) Validate() error {
	if err := d.CPU.Validate(); err != nil {
		return err
	}
	if err := d.Mem.Validate(); err != nil {
		return err
	}
	if d.EM.ProbeGain <= 0 {
		return fmt.Errorf("device %s: probe gain must be positive", d.Name)
	}
	if d.EM.DefaultBandwidthHz <= 0 || d.EM.DefaultBandwidthHz > d.CPU.ClockHz/2 {
		return fmt.Errorf("device %s: bandwidth %v out of range", d.Name, d.EM.DefaultBandwidthHz)
	}
	return nil
}

// nsToCycles converts nanoseconds to (at least 1) cycles at clockHz.
func nsToCycles(ns float64, clockHz float64) int {
	c := int(math.Round(ns * 1e-9 * clockHz))
	if c < 1 {
		c = 1
	}
	return c
}

// memConfig builds a device memory configuration. DRAM latencies are given
// in nanoseconds and converted at the device clock, because the paper
// observes that the phones' and the board's main-memory latencies are
// similar in *nanoseconds* while their clocks differ — which is what makes
// stall time per miss larger on the faster-clocked Olimex board.
func memConfig(clockHz float64, llcBytes, l1Bytes int, mshrs int, prefetch bool,
	rowHitNS, rowMissNS float64) mem.Config {
	return mem.Config{
		L1I: cache.Config{
			Name: "L1I", SizeBytes: l1Bytes, LineBytes: 64, Ways: 4,
			Policy: cache.Random, HitLatency: 1,
		},
		L1D: cache.Config{
			Name: "L1D", SizeBytes: l1Bytes, LineBytes: 64, Ways: 4,
			Policy: cache.Random, HitLatency: 2,
		},
		LLC: cache.Config{
			Name: "LLC", SizeBytes: llcBytes, LineBytes: 64, Ways: 8,
			Policy: cache.Random, HitLatency: 12,
		},
		MSHRs:          mshrs,
		TLBEntries:     32,
		TLBPenalty:     nsToCycles(25, clockHz),
		LLCFillLatency: 4,
		Prefetch:       prefetch,
		PrefetchDegree: 2,
		DRAM: dram.Config{
			Banks:        8,
			RowBytes:     2048,
			RowHit:       nsToCycles(rowHitNS, clockHz),
			RowMiss:      nsToCycles(rowMissNS, clockHz),
			BusOccupancy: nsToCycles(18, clockHz),
			// Fig. 5: refresh-coincident stalls of 2–3 µs at least every
			// ~70 µs on the Olimex SDRAM; the phones behave similarly.
			RefreshInterval: nsToCycles(70_000, clockHz),
			RefreshDuration: nsToCycles(2_200, clockHz),
		},
	}
}

func cpuConfig(name string, clockHz float64, width, fq, lq, sq, branchPenalty int) cpu.Config {
	return cpu.Config{
		Name:          name,
		ClockHz:       clockHz,
		Width:         width,
		FetchQueue:    fq,
		LoadQueue:     lq,
		StoreQueue:    sq,
		Regs:          64,
		BranchPenalty: branchPenalty,
		IntALULat:     1,
		IntMulLat:     3,
		IntDivLat:     20,
		FPALULat:      4,
		FPMulLat:      5,
		FPDivLat:      24,
		Power:         power.DefaultWeights(),
	}
}

// Alcatel returns the Alcatel Ideal configuration: quad Cortex-A7 at
// 1.1 GHz with a 1 MB LLC. The large LLC is why the paper's Table IV shows
// far fewer misses on this device.
func Alcatel() Device {
	const clock = 1.1e9
	return Device{
		Name:     "Alcatel",
		SoC:      "Qualcomm Snapdragon MSM8909",
		CoreName: "Cortex-A7",
		Cores:    4,
		CPU:      cpuConfig("Alcatel/Cortex-A7", clock, 2, 12, 6, 6, 3),
		// LPDDR3 on the newer MSM8909: markedly lower latency than the
		// older boards, which (with the deeper queues) is why Table IV
		// shows by far the lowest stall-time percentages on this phone.
		Mem: memConfig(clock, 1<<20, 32<<10, 6, false, 55, 120),
		EM: EMPath{
			ProbeGain:    0.8,
			SNRdB:        22,
			DriftPeriodS: 0.011,
			DriftDepth:   0.05,
			// Fig. 12: on this faster, lower-latency phone the stall
			// statistics only stabilise at >=60 MHz of measurement
			// bandwidth, so its standard acquisition uses 80 MHz.
			DefaultBandwidthHz: 80e6,
		},
	}
}

// Samsung returns the Samsung Galaxy Centura configuration: single
// Cortex-A5 at 800 MHz with a 256 KB LLC and a hardware prefetcher (the
// paper credits the prefetcher for Samsung's lower miss counts relative to
// Olimex despite equal LLC sizes).
func Samsung() Device {
	const clock = 800e6
	return Device{
		Name:     "Samsung",
		SoC:      "Qualcomm Snapdragon MSM7625A",
		CoreName: "Cortex-A5",
		Cores:    1,
		CPU:      cpuConfig("Samsung/Cortex-A5", clock, 1, 8, 2, 4, 2),
		Mem:      memConfig(clock, 256<<10, 16<<10, 2, true, 110, 250),
		EM: EMPath{
			ProbeGain:          1.3,
			SNRdB:              20,
			DriftPeriodS:       0.009,
			DriftDepth:         0.06,
			DefaultBandwidthHz: 40e6,
		},
	}
}

// Olimex returns the A13-OLinuXino-MICRO configuration: single Cortex-A8
// at 1.008 GHz with a 256 KB LLC and no prefetcher. Its higher clock with
// phone-like memory latency in nanoseconds yields the most stall time per
// miss (Table IV's highest "Miss Latency %").
func Olimex() Device {
	const clock = 1.008e9
	return Device{
		Name:     "Olimex",
		SoC:      "Allwinner A13",
		CoreName: "Cortex-A8",
		Cores:    1,
		CPU:      cpuConfig("Olimex/Cortex-A8", clock, 2, 10, 4, 4, 4),
		Mem:      memConfig(clock, 256<<10, 32<<10, 4, false, 95, 260),
		EM: EMPath{
			ProbeGain:          1.0,
			SNRdB:              24,
			DriftPeriodS:       0.013,
			DriftDepth:         0.04,
			DefaultBandwidthHz: 40e6,
		},
	}
}

// SESC returns the cycle-accurate-simulator validation configuration from
// Section III-B: a 4-wide in-order core at 1 GHz whose power is sampled
// once per 20 cycles (50 MHz), with Olimex-like caches.
func SESC() Device {
	const clock = 1e9
	return Device{
		Name:     "SESC",
		SoC:      "simulated",
		CoreName: "4-wide in-order",
		Cores:    1,
		CPU:      cpuConfig("SESC/4-wide", clock, 4, 16, 8, 8, 3),
		Mem:      memConfig(clock, 256<<10, 32<<10, 4, false, 95, 255),
		EM: EMPath{
			// The proxy signal is the simulator's own power trace: no
			// probe, no noise, no drift.
			ProbeGain:          1.0,
			SNRdB:              math.Inf(1),
			DriftPeriodS:       1,
			DriftDepth:         0,
			DefaultBandwidthHz: 50e6,
		},
	}
}

// All returns the three physical targets in the paper's column order.
func All() []Device {
	return []Device{Alcatel(), Samsung(), Olimex()}
}

// ByName returns the named device configuration. The match is
// case-insensitive over the whole name.
func ByName(name string) (Device, error) {
	switch {
	case strings.EqualFold(name, "alcatel"):
		return Alcatel(), nil
	case strings.EqualFold(name, "samsung"):
		return Samsung(), nil
	case strings.EqualFold(name, "olimex"):
		return Olimex(), nil
	case strings.EqualFold(name, "sesc"):
		return SESC(), nil
	default:
		return Device{}, fmt.Errorf("device: unknown device %q", name)
	}
}
