package device

import (
	"math"
	"testing"
)

func TestAllDevicesValid(t *testing.T) {
	for _, d := range append(All(), SESC()) {
		if err := d.Validate(); err != nil {
			t.Errorf("device %s invalid: %v", d.Name, err)
		}
	}
}

func TestTableISpecs(t *testing.T) {
	a, s, o := Alcatel(), Samsung(), Olimex()
	if a.CPU.ClockHz != 1.1e9 || s.CPU.ClockHz != 800e6 || o.CPU.ClockHz != 1.008e9 {
		t.Fatal("Table I clock frequencies wrong")
	}
	if a.Cores != 4 || s.Cores != 1 || o.Cores != 1 {
		t.Fatal("Table I core counts wrong")
	}
	if a.CoreName != "Cortex-A7" || s.CoreName != "Cortex-A5" || o.CoreName != "Cortex-A8" {
		t.Fatal("Table I core names wrong")
	}
	// LLC sizes: Alcatel 1 MB; Samsung and Olimex 256 KB.
	if a.Mem.LLC.SizeBytes != 1<<20 {
		t.Fatal("Alcatel LLC must be 1 MB")
	}
	if s.Mem.LLC.SizeBytes != 256<<10 || o.Mem.LLC.SizeBytes != 256<<10 {
		t.Fatal("Samsung/Olimex LLC must be 256 KB")
	}
	// Only Samsung has the hardware prefetcher.
	if a.Mem.Prefetch || !s.Mem.Prefetch || o.Mem.Prefetch {
		t.Fatal("prefetcher assignment wrong")
	}
	// Random replacement, as in the paper's simulator.
	if o.Mem.LLC.Policy.String() != "random" {
		t.Fatal("LLC replacement must be random")
	}
}

func TestMemoryLatencySimilarInNanoseconds(t *testing.T) {
	// The paper: Samsung and Olimex main-memory latencies are similar in
	// nanoseconds while clocks differ, so Olimex pays more cycles.
	s, o := Samsung(), Olimex()
	sNS := float64(s.Mem.DRAM.RowMiss) / s.CPU.ClockHz * 1e9
	oNS := float64(o.Mem.DRAM.RowMiss) / o.CPU.ClockHz * 1e9
	if math.Abs(sNS-oNS) > 40 {
		t.Fatalf("row-miss latencies %v ns vs %v ns too different", sNS, oNS)
	}
	if o.Mem.DRAM.RowMiss <= s.Mem.DRAM.RowMiss {
		t.Fatal("Olimex must pay more cycles per miss than Samsung")
	}
}

func TestRefreshParameters(t *testing.T) {
	o := Olimex()
	intervalUS := float64(o.Mem.DRAM.RefreshInterval) / o.CPU.ClockHz * 1e6
	durationUS := float64(o.Mem.DRAM.RefreshDuration) / o.CPU.ClockHz * 1e6
	if math.Abs(intervalUS-70) > 2 {
		t.Fatalf("refresh interval %v µs, want ~70 (paper Fig. 5)", intervalUS)
	}
	if durationUS < 1.5 || durationUS > 3 {
		t.Fatalf("refresh duration %v µs, want 2-3 (paper Fig. 5)", durationUS)
	}
}

func TestSESCConfig(t *testing.T) {
	d := SESC()
	if d.CPU.Width != 4 {
		t.Fatal("SESC validation core must be 4-wide (paper Section III-B)")
	}
	if !math.IsInf(d.EM.SNRdB, 1) || d.EM.DriftDepth != 0 {
		t.Fatal("SESC proxy signal must be noise- and drift-free")
	}
}

func TestByName(t *testing.T) {
	// Fully case-insensitive over all four device names.
	cases := []struct {
		in   string
		want string
	}{
		{"alcatel", "Alcatel"}, {"Alcatel", "Alcatel"}, {"ALCATEL", "Alcatel"}, {"aLcAtEl", "Alcatel"},
		{"samsung", "Samsung"}, {"Samsung", "Samsung"}, {"SAMSUNG", "Samsung"}, {"sAmSuNg", "Samsung"},
		{"olimex", "Olimex"}, {"Olimex", "Olimex"}, {"OLIMEX", "Olimex"}, {"oLiMeX", "Olimex"},
		{"sesc", "SESC"}, {"SESC", "SESC"}, {"Sesc", "SESC"}, {"sEsC", "SESC"},
	}
	for _, tc := range cases {
		d, err := ByName(tc.in)
		if err != nil {
			t.Errorf("ByName(%q): %v", tc.in, err)
			continue
		}
		if d.Name != tc.want {
			t.Errorf("ByName(%q) = %q, want %q", tc.in, d.Name, tc.want)
		}
	}
	if _, err := ByName("nexus"); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := ByName(""); err == nil {
		t.Error("empty name accepted")
	}
}

func TestCycleConversions(t *testing.T) {
	o := Olimex()
	if got := o.Cycles(1e-6); got != 1008 {
		t.Fatalf("1 µs = %d cycles, want 1008", got)
	}
	if got := o.Seconds(1008); math.Abs(got-1e-6) > 1e-12 {
		t.Fatalf("1008 cycles = %v s, want 1 µs", got)
	}
	if o.ClockHz() != o.CPU.ClockHz {
		t.Fatal("ClockHz accessor mismatch")
	}
}

func TestValidationCatchesBadDevice(t *testing.T) {
	d := Olimex()
	d.EM.ProbeGain = 0
	if err := d.Validate(); err == nil {
		t.Fatal("zero probe gain accepted")
	}
	d = Olimex()
	d.EM.DefaultBandwidthHz = d.CPU.ClockHz
	if err := d.Validate(); err == nil {
		t.Fatal("bandwidth above Nyquist accepted")
	}
}
