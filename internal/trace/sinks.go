package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// JSONL writes one JSON object per event to an underlying writer — the
// sink behind `emprof -trace out.jsonl`. Writes are buffered; call Flush
// before reading the output. The first write error is sticky: later
// events are dropped and Err reports it. Safe for concurrent use.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Flush writes buffered events through to the underlying writer and
// returns the sticky error, if any.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		j.err = j.w.Flush()
	}
	return j.err
}

// Err returns the first write error encountered, or nil.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *JSONL) emit(r Record) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(r)
	}
	j.mu.Unlock()
}

func (j *JSONL) DipCandidate(e DipCandidate)   { j.emit(e.Record()) }
func (j *JSONL) StallAccepted(e StallAccepted) { j.emit(e.Record()) }
func (j *JSONL) StallRejected(e StallRejected) { j.emit(e.Record()) }
func (j *JSONL) Resync(e Resync)               { j.emit(e.Record()) }
func (j *JSONL) QualityFlag(e QualityFlag)     { j.emit(e.Record()) }
func (j *JSONL) ChunkMerged(e ChunkMerged)     { j.emit(e.Record()) }
func (j *JSONL) StageTiming(e StageTiming)     { j.emit(e.Record()) }

// Ring keeps the most recent events in a fixed-capacity circular buffer
// — the per-session sink behind emprofd's GET /v1/sessions/{id}/trace.
// When full, the oldest event is overwritten and counted as dropped.
// Safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Record
	next  int // write index
	total uint64
}

// NewRing returns a Ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Record, 0, capacity)}
}

// Records returns the retained events, oldest first.
func (r *Ring) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Total returns how many events were ever observed, retained or not.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events were overwritten by newer ones.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}

func (r *Ring) emit(rec Record) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

func (r *Ring) DipCandidate(e DipCandidate)   { r.emit(e.Record()) }
func (r *Ring) StallAccepted(e StallAccepted) { r.emit(e.Record()) }
func (r *Ring) StallRejected(e StallRejected) { r.emit(e.Record()) }
func (r *Ring) Resync(e Resync)               { r.emit(e.Record()) }
func (r *Ring) QualityFlag(e QualityFlag)     { r.emit(e.Record()) }
func (r *Ring) ChunkMerged(e ChunkMerged)     { r.emit(e.Record()) }
func (r *Ring) StageTiming(e StageTiming)     { r.emit(e.Record()) }

// DepthBuckets is the number of dip-depth histogram buckets in Metrics,
// evenly dividing the normalised depth range [0, 1).
const DepthBuckets = 10

// stageStat accumulates wall time and coverage for one pipeline stage.
type stageStat struct {
	ns      int64
	samples int64
	count   uint64
}

// Metrics aggregates decision events into counters and histograms
// suitable for Prometheus exposition — the shared aggregator behind
// emprofd's /metrics and embench's observer guard. Safe for concurrent
// use.
type Metrics struct {
	mu         sync.Mutex
	candidates uint64
	accepted   uint64
	refresh    uint64
	rejected   map[RejectReason]uint64
	resyncs    map[ResyncCause]uint64
	flagged    [5]uint64 // indexed by flag bit position: nan, gap, clip, burst, step
	chunks     uint64
	depthHist  [DepthBuckets]uint64
	depthSum   float64
	stages     map[Stage]*stageStat
}

// NewMetrics returns an empty aggregator.
func NewMetrics() *Metrics {
	return &Metrics{
		rejected: make(map[RejectReason]uint64),
		resyncs:  make(map[ResyncCause]uint64),
		stages:   make(map[Stage]*stageStat),
	}
}

func (m *Metrics) DipCandidate(DipCandidate) {
	m.mu.Lock()
	m.candidates++
	m.mu.Unlock()
}

func (m *Metrics) StallAccepted(e StallAccepted) {
	m.mu.Lock()
	m.accepted++
	if e.Refresh {
		m.refresh++
	}
	b := int(e.Depth * DepthBuckets)
	if b < 0 {
		b = 0
	}
	if b >= DepthBuckets {
		b = DepthBuckets - 1
	}
	m.depthHist[b]++
	m.depthSum += e.Depth
	m.mu.Unlock()
}

func (m *Metrics) StallRejected(e StallRejected) {
	m.mu.Lock()
	m.rejected[e.Reason]++
	m.mu.Unlock()
}

func (m *Metrics) Resync(e Resync) {
	m.mu.Lock()
	m.resyncs[e.Cause]++
	m.mu.Unlock()
}

func (m *Metrics) QualityFlag(e QualityFlag) {
	m.mu.Lock()
	// Count the flagged sample and any retroactively flagged neighbours
	// under each class the event carries.
	n := uint64(1 + e.Retro)
	for bit := 0; bit < len(m.flagged); bit++ {
		if e.Flags&(1<<bit) != 0 {
			m.flagged[bit] += n
		}
	}
	m.mu.Unlock()
}

func (m *Metrics) ChunkMerged(ChunkMerged) {
	m.mu.Lock()
	m.chunks++
	m.mu.Unlock()
}

func (m *Metrics) StageTiming(e StageTiming) {
	m.mu.Lock()
	s := m.stages[e.Stage]
	if s == nil {
		s = &stageStat{}
		m.stages[e.Stage] = s
	}
	s.ns += e.DurationNs
	s.samples += e.Samples
	s.count++
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of the aggregated metrics.
type Snapshot struct {
	DipCandidates  uint64
	StallsAccepted uint64
	RefreshStalls  uint64
	Rejected       map[RejectReason]uint64
	Resyncs        map[ResyncCause]uint64
	FlaggedSamples map[string]uint64
	ChunksMerged   uint64
	DepthHist      [DepthBuckets]uint64
	DepthSum       float64
	StageNs        map[Stage]int64
}

// Snapshot returns a copy of the current aggregate state.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		DipCandidates:  m.candidates,
		StallsAccepted: m.accepted,
		RefreshStalls:  m.refresh,
		ChunksMerged:   m.chunks,
		DepthHist:      m.depthHist,
		DepthSum:       m.depthSum,
		Rejected:       make(map[RejectReason]uint64, len(m.rejected)),
		Resyncs:        make(map[ResyncCause]uint64, len(m.resyncs)),
		FlaggedSamples: make(map[string]uint64),
		StageNs:        make(map[Stage]int64, len(m.stages)),
	}
	for k, v := range m.rejected {
		s.Rejected[k] = v
	}
	for k, v := range m.resyncs {
		s.Resyncs[k] = v
	}
	for bit, n := range m.flagged {
		if n > 0 {
			s.FlaggedSamples[Flag(1<<bit).String()] = n
		}
	}
	for k, v := range m.stages {
		s.StageNs[k] = v.ns
	}
	return s
}

// WritePrometheus renders the aggregate state in Prometheus text
// exposition format, prefixing every metric name (e.g. "emprofd_trace").
func (m *Metrics) WritePrometheus(w io.Writer, prefix string) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s_dip_candidates_total Dips opened by the detector.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_dip_candidates_total counter\n", prefix)
	fmt.Fprintf(w, "%s_dip_candidates_total %d\n", prefix, m.candidates)

	fmt.Fprintf(w, "# HELP %s_stalls_accepted_total Dips reported as stalls.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_stalls_accepted_total counter\n", prefix)
	fmt.Fprintf(w, "%s_stalls_accepted_total %d\n", prefix, m.accepted)

	fmt.Fprintf(w, "# HELP %s_refresh_stalls_total Accepted stalls coinciding with DRAM refresh.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_refresh_stalls_total counter\n", prefix)
	fmt.Fprintf(w, "%s_refresh_stalls_total %d\n", prefix, m.refresh)

	fmt.Fprintf(w, "# HELP %s_stalls_rejected_total Candidate dips discarded, by reason.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_stalls_rejected_total counter\n", prefix)
	for _, k := range sortedKeys(m.rejected) {
		fmt.Fprintf(w, "%s_stalls_rejected_total{reason=%q} %d\n", prefix, k, m.rejected[RejectReason(k)])
	}

	fmt.Fprintf(w, "# HELP %s_resyncs_total Normalization re-seeds, by cause.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_resyncs_total counter\n", prefix)
	for _, k := range sortedKeys(m.resyncs) {
		fmt.Fprintf(w, "%s_resyncs_total{cause=%q} %d\n", prefix, k, m.resyncs[ResyncCause(k)])
	}

	fmt.Fprintf(w, "# HELP %s_flagged_samples_total Samples flagged by the quality monitor, by class.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_flagged_samples_total counter\n", prefix)
	for bit, n := range m.flagged {
		if n > 0 {
			fmt.Fprintf(w, "%s_flagged_samples_total{class=%q} %d\n", prefix, Flag(1<<bit).String(), n)
		}
	}

	fmt.Fprintf(w, "# HELP %s_chunks_merged_total Parallel-analyzer chunks replayed into the profile.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_chunks_merged_total counter\n", prefix)
	fmt.Fprintf(w, "%s_chunks_merged_total %d\n", prefix, m.chunks)

	fmt.Fprintf(w, "# HELP %s_stall_depth Dip depth of accepted stalls (normalized magnitude).\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_stall_depth histogram\n", prefix)
	var cum uint64
	for i := 0; i < DepthBuckets; i++ {
		cum += m.depthHist[i]
		fmt.Fprintf(w, "%s_stall_depth_bucket{le=\"%.1f\"} %d\n", prefix, float64(i+1)/DepthBuckets, cum)
	}
	fmt.Fprintf(w, "%s_stall_depth_bucket{le=\"+Inf\"} %d\n", prefix, cum)
	fmt.Fprintf(w, "%s_stall_depth_sum %g\n", prefix, m.depthSum)
	fmt.Fprintf(w, "%s_stall_depth_count %d\n", prefix, m.accepted)

	fmt.Fprintf(w, "# HELP %s_stage_ns_total Analyzer stage wall time in nanoseconds.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_stage_ns_total counter\n", prefix)
	stageKeys := make([]string, 0, len(m.stages))
	for k := range m.stages {
		stageKeys = append(stageKeys, string(k))
	}
	sort.Strings(stageKeys)
	for _, k := range stageKeys {
		s := m.stages[Stage(k)]
		fmt.Fprintf(w, "%s_stage_ns_total{stage=%q} %d\n", prefix, k, s.ns)
	}
	fmt.Fprintf(w, "# HELP %s_stage_samples_total Capture samples covered per analyzer stage.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_stage_samples_total counter\n", prefix)
	for _, k := range stageKeys {
		s := m.stages[Stage(k)]
		fmt.Fprintf(w, "%s_stage_samples_total{stage=%q} %d\n", prefix, k, s.samples)
	}
}

// sortedKeys returns the map's string keys in sorted order.
func sortedKeys[K ~string, V any](m map[K]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}
