package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// emitOneOfEach drives every Observer method once with distinctive values.
func emitOneOfEach(o Observer) {
	o.DipCandidate(DipCandidate{Pos: 10, Value: 0.2, Lo: 1, Hi: 5})
	o.StallAccepted(StallAccepted{Start: 10, End: 30, StartS: 1e-6, DurationS: 5e-7, Cycles: 500, Depth: 0.15, Confidence: 0.8})
	o.StallRejected(StallRejected{Start: 40, End: 42, DurationS: 5e-8, Depth: 0.3, Reason: RejectTooShort})
	o.Resync(Resync{Pos: 100, Cause: ResyncGap})
	o.QualityFlag(QualityFlag{Pos: 99, Flags: FlagGap | FlagStep, Retro: 3})
	o.ChunkMerged(ChunkMerged{Chunk: 0, Lo: 0, Hi: 4096, Stalls: 2})
	o.StageTiming(StageTiming{Stage: StageScan, DurationNs: 1234, Samples: 4096})
}

func TestFlagString(t *testing.T) {
	cases := []struct {
		f    Flag
		want string
	}{
		{0, "none"},
		{FlagNaN, "nan"},
		{FlagGap | FlagClip, "gap|clip"},
		{FlagNaN | FlagGap | FlagClip | FlagBurst | FlagStep, "nan|gap|clip|burst|step"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("Flag(%d).String() = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	emitOneOfEach(j)
	if err := j.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("got %d lines, want 7", len(lines))
	}
	wantTypes := []string{
		TypeDipCandidate, TypeStallAccepted, TypeStallRejected,
		TypeResync, TypeQualityFlag, TypeChunkMerged, TypeStageTiming,
	}
	for i, line := range lines {
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if r.Type != wantTypes[i] {
			t.Errorf("line %d type = %q, want %q", i, r.Type, wantTypes[i])
		}
	}
	// Spot-check field mapping on the reject line.
	var rej Record
	if err := json.Unmarshal([]byte(lines[2]), &rej); err != nil {
		t.Fatal(err)
	}
	if rej.Reason != string(RejectTooShort) || rej.Start != 40 || rej.End != 42 {
		t.Errorf("reject record = %+v", rej)
	}
	// Omitted fields must not appear on unrelated lines.
	if strings.Contains(lines[0], "reason") || strings.Contains(lines[3], "depth") {
		t.Errorf("records carry fields of other event types: %q / %q", lines[0], lines[3])
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errWrite
	}
	f.n--
	return len(p), nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "boom" }

func TestJSONLStickyError(t *testing.T) {
	// Tiny bufio buffer forces writes through; the first failure sticks.
	j := &JSONL{}
	*j = *NewJSONL(&failWriter{n: 0})
	for i := 0; i < 100; i++ {
		j.Resync(Resync{Pos: int64(i), Cause: ResyncGap})
	}
	if err := j.Flush(); err == nil {
		t.Fatal("want sticky error after failed writes")
	}
	if j.Err() == nil {
		t.Fatal("Err() should report the sticky error")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Resync(Resync{Pos: int64(i), Cause: ResyncGap})
	}
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("retained %d, want 3", len(recs))
	}
	for i, rec := range recs {
		if want := int64(i + 2); rec.Pos != want {
			t.Errorf("record %d pos = %d, want %d (oldest-first)", i, rec.Pos, want)
		}
	}
	if r.Total() != 5 || r.Dropped() != 2 {
		t.Errorf("Total=%d Dropped=%d, want 5/2", r.Total(), r.Dropped())
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(8)
	emitOneOfEach(r)
	if got := len(r.Records()); got != 7 {
		t.Fatalf("retained %d, want 7", got)
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestRingMinCapacity(t *testing.T) {
	r := NewRing(0)
	r.Resync(Resync{Pos: 1, Cause: ResyncGap})
	r.Resync(Resync{Pos: 2, Cause: ResyncGainStep})
	recs := r.Records()
	if len(recs) != 1 || recs[0].Pos != 2 {
		t.Fatalf("records = %+v, want just pos=2", recs)
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	emitOneOfEach(m)
	m.StallRejected(StallRejected{Reason: RejectTooShallow, Depth: 0.4})
	m.StallAccepted(StallAccepted{Depth: 0.95, Refresh: true})
	m.StallAccepted(StallAccepted{Depth: 2.5}) // out-of-range clamps to top bucket
	s := m.Snapshot()
	if s.DipCandidates != 1 || s.StallsAccepted != 3 || s.RefreshStalls != 1 {
		t.Errorf("candidates=%d accepted=%d refresh=%d", s.DipCandidates, s.StallsAccepted, s.RefreshStalls)
	}
	if s.Rejected[RejectTooShort] != 1 || s.Rejected[RejectTooShallow] != 1 {
		t.Errorf("rejected = %v", s.Rejected)
	}
	if s.Resyncs[ResyncGap] != 1 {
		t.Errorf("resyncs = %v", s.Resyncs)
	}
	// QualityFlag carried gap|step with Retro=3 → 4 samples per class.
	if s.FlaggedSamples["gap"] != 4 || s.FlaggedSamples["step"] != 4 {
		t.Errorf("flagged = %v", s.FlaggedSamples)
	}
	if s.DepthHist[1] != 1 || s.DepthHist[9] != 2 {
		t.Errorf("depth hist = %v", s.DepthHist)
	}
	if want := 0.15 + 0.95 + 2.5; math.Abs(s.DepthSum-want) > 1e-12 {
		t.Errorf("depth sum = %v, want %v", s.DepthSum, want)
	}
	if s.StageNs[StageScan] != 1234 {
		t.Errorf("stage ns = %v", s.StageNs)
	}
	if s.ChunksMerged != 1 {
		t.Errorf("chunks = %d", s.ChunksMerged)
	}
}

func TestMetricsPrometheus(t *testing.T) {
	m := NewMetrics()
	emitOneOfEach(m)
	var buf bytes.Buffer
	m.WritePrometheus(&buf, "emprofd_trace")
	out := buf.String()
	for _, want := range []string{
		"emprofd_trace_dip_candidates_total 1",
		"emprofd_trace_stalls_accepted_total 1",
		`emprofd_trace_stalls_rejected_total{reason="too-short"} 1`,
		`emprofd_trace_resyncs_total{cause="gap"} 1`,
		`emprofd_trace_flagged_samples_total{class="gap"} 4`,
		"emprofd_trace_chunks_merged_total 1",
		`emprofd_trace_stall_depth_bucket{le="+Inf"} 1`,
		"emprofd_trace_stall_depth_sum 0.15",
		"emprofd_trace_stall_depth_count 1",
		`emprofd_trace_stage_ns_total{stage="scan"} 1234`,
		`emprofd_trace_stage_samples_total{stage="scan"} 4096`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing must be nil")
	}
	m1, m2 := NewMetrics(), NewMetrics()
	if got := Multi(nil, m1); got != m1 {
		t.Fatal("Multi of one must return it directly")
	}
	fan := Multi(m1, nil, m2)
	emitOneOfEach(fan)
	if m1.Snapshot().StallsAccepted != 1 || m2.Snapshot().StallsAccepted != 1 {
		t.Fatal("Multi did not fan out to both sinks")
	}
}

// TestSinksConcurrent exercises every sink from parallel goroutines under
// -race: ProfileParallel emits monitor and detector events concurrently.
func TestSinksConcurrent(t *testing.T) {
	var buf bytes.Buffer
	sinks := Multi(NewJSONL(&buf), NewRing(64), NewMetrics())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				emitOneOfEach(sinks)
			}
		}()
	}
	wg.Wait()
}
