// Package trace is the decision-trace observability layer of the EMPROF
// analyzers: every reported (or suppressed) stall is the outcome of a
// chain of analyzer decisions — a dip candidate opened, a duration or
// depth threshold compared, a normalisation resync fired, a confidence
// assigned — and this package makes that chain observable without
// perturbing it.
//
// An Observer receives one typed, by-value event per decision point. The
// analyzers in internal/core emit events only when an observer is
// attached: with a nil observer the pipeline takes its original path,
// bit-identical in output and allocation-free on the per-sample hot path
// (asserted by tests and the CI benchmark guard). Attaching any observer
// never changes the produced Profile — observers receive copies and
// cannot write back.
//
// Three ready-made sinks cover the common deployments:
//
//   - JSONL writes one JSON object per event to an io.Writer
//     (`emprof -trace out.jsonl`).
//   - Ring keeps the last N events in memory; emprofd exposes one per
//     session at GET /v1/sessions/{id}/trace.
//   - Metrics aggregates events into counters and histograms (stalls by
//     reject reason, dip-depth distribution, resyncs by cause, per-stage
//     wall time) rendered in Prometheus text format alongside the
//     service registry.
//
// Sinks may be combined with Multi. All sinks in this package are safe
// for concurrent use; that matters because core.ProfileParallel emits
// monitor events from its scan goroutine concurrently with detection
// events from the merging goroutine. A custom Observer used with the
// parallel analyzer must be equally safe (plain batch and streaming
// analyzers emit from a single goroutine).
package trace

import "encoding/json"

// Flag marks the impairment classes a sample belongs to, as detected by
// the analyzers' signal-quality monitor. The bit layout is shared with
// internal/core's per-sample mask.
type Flag uint8

const (
	// FlagNaN marks a non-finite (NaN/±Inf) sample.
	FlagNaN Flag = 1 << iota
	// FlagGap marks an exact-zero sample (digitizer dropout).
	FlagGap
	// FlagClip marks a flat-lined sample at the top of the range (ADC
	// saturation).
	FlagClip
	// FlagBurst marks an impulsive spike far above the busy level.
	FlagBurst
	// FlagStep marks a sample inside a confirmed receiver gain-step
	// transition region.
	FlagStep
)

// String renders the flag set as a "|"-joined list, e.g. "gap|step".
func (f Flag) String() string {
	if f == 0 {
		return "none"
	}
	names := [...]struct {
		bit  Flag
		name string
	}{
		{FlagNaN, "nan"}, {FlagGap, "gap"}, {FlagClip, "clip"},
		{FlagBurst, "burst"}, {FlagStep, "step"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	return out
}

// RejectReason says why a candidate dip was not reported as a stall.
type RejectReason string

const (
	// RejectTooShort: the dip closed before reaching the minimum stall
	// duration (Config.MinStallS).
	RejectTooShort RejectReason = "too-short"
	// RejectTooShallow: the dip never reached the depth floor required
	// for its duration class (Config.MaxDipDepth / MaxDipDepthLong).
	RejectTooShallow RejectReason = "too-shallow"
	// RejectImpaired: a structural acquisition impairment (gap, clip,
	// gain step) overlapped the dip, which was aborted rather than risk
	// reporting a phantom stall.
	RejectImpaired RejectReason = "impaired"
)

// ResyncCause says why the normalisation min/max state was re-seeded.
type ResyncCause string

const (
	// ResyncGap: a long zero-filled dropout ended and the coupling may
	// have moved while the monitor was blind.
	ResyncGap ResyncCause = "gap"
	// ResyncGainStep: a sustained receiver gain discontinuity was
	// confirmed.
	ResyncGainStep ResyncCause = "gain-step"
	// ResyncProbeShift: the opt-in probe-shift detector (see the core
	// config's ProbeShiftRatio) confirmed a sustained level shift smaller
	// than a gain step — typically the probe moving mid-capture.
	ResyncProbeShift ResyncCause = "probe_shift"
)

// Stage labels one pipeline stage in a StageTiming event.
type Stage string

const (
	// StageScan is the sequential quality-monitor + smoothing pass.
	StageScan Stage = "scan"
	// StageNormalize is the moving min/max normalisation pass.
	StageNormalize Stage = "normalize"
	// StageDetect is the dip-detection pass over normalised values.
	StageDetect Stage = "detect"
	// StageMerge is the parallel analyzer's in-order detector replay over
	// normalised chunks.
	StageMerge Stage = "merge"
	// StageDrain is the streaming analyzer's Finalize: flushing the
	// smoother tail and the trailing half-window of pending decisions.
	StageDrain Stage = "drain"
)

// DipCandidate is emitted when the normalised signal falls below the
// entry threshold and a dip opens. Every candidate is later resolved by
// exactly one StallAccepted or StallRejected event.
type DipCandidate struct {
	// Pos is the sample position at which the dip opened.
	Pos int64
	// Value is the normalised magnitude that crossed the entry threshold.
	Value float64
	// Lo and Hi are the moving min/max normalisation stats in force at
	// entry (the local contrast the confidence score uses).
	Lo, Hi float64
}

// StallAccepted is emitted when a dip passes the duration and depth
// criteria and is reported as a stall. Its fields mirror core.Stall.
type StallAccepted struct {
	// Start and End delimit the dip in samples (half-open).
	Start, End int64
	// StartS is the onset in seconds from capture start.
	StartS float64
	// DurationS is the dip duration in seconds.
	DurationS float64
	// Cycles is the stall cost in processor cycles.
	Cycles float64
	// Depth is the minimum normalised magnitude inside the dip.
	Depth float64
	// Confidence is the detection confidence in [0, 1].
	Confidence float64
	// Refresh is true for refresh-coincident stalls.
	Refresh bool
}

// StallRejected is emitted when a candidate dip is discarded.
type StallRejected struct {
	// Start and End delimit the candidate in samples (half-open; End is
	// the position at which it was discarded).
	Start, End int64
	// DurationS is the candidate duration in seconds.
	DurationS float64
	// Depth is the minimum normalised magnitude the candidate reached.
	Depth float64
	// Reason says which criterion killed it.
	Reason RejectReason
}

// Resync is emitted when the quality monitor re-seeds the normalisation
// min/max state.
type Resync struct {
	// Pos is the sample position before which the state is reset.
	Pos int64
	// Cause is what triggered the re-seed.
	Cause ResyncCause
}

// QualityFlag is emitted for every sample the quality monitor flags as
// impaired. Retro counts immediately preceding samples that retroactively
// received the same flags (clip runs and gain-step half-windows); no
// separate events are emitted for those.
type QualityFlag struct {
	// Pos is the flagged sample position.
	Pos int64
	// Flags is the impairment class set.
	Flags Flag
	// Retro is how many preceding samples were retroactively flagged.
	Retro int
}

// ChunkMerged is emitted by the parallel analyzer after replaying the
// detector over one normalised chunk.
type ChunkMerged struct {
	// Chunk is the chunk index in capture order.
	Chunk int
	// Lo and Hi delimit the chunk's owned positions (half-open).
	Lo, Hi int64
	// Stalls is how many stalls the replay of this chunk reported.
	Stalls int
}

// StageTiming reports the wall time of one pipeline stage. Timings are
// only measured when an observer is attached, so the nil-observer path
// never reads the clock.
type StageTiming struct {
	// Stage labels the pipeline stage.
	Stage Stage
	// DurationNs is the stage wall time in nanoseconds.
	DurationNs int64
	// Samples is the number of capture samples the stage covered.
	Samples int64
}

// Observer receives analyzer decision events. Events are delivered
// synchronously from the analysis path, so implementations should be
// cheap; all sinks in this package are. Implementations used with
// core.ProfileParallel must be safe for concurrent use. Embed Nop to
// implement only the events of interest.
type Observer interface {
	DipCandidate(DipCandidate)
	StallAccepted(StallAccepted)
	StallRejected(StallRejected)
	Resync(Resync)
	QualityFlag(QualityFlag)
	ChunkMerged(ChunkMerged)
	StageTiming(StageTiming)
}

// Nop is an Observer that ignores every event. Embed it to implement
// Observer partially; it is also the baseline for overhead benchmarks.
type Nop struct{}

func (Nop) DipCandidate(DipCandidate)   {}
func (Nop) StallAccepted(StallAccepted) {}
func (Nop) StallRejected(StallRejected) {}
func (Nop) Resync(Resync)               {}
func (Nop) QualityFlag(QualityFlag)     {}
func (Nop) ChunkMerged(ChunkMerged)     {}
func (Nop) StageTiming(StageTiming)     {}

// multi fans events out to several observers in order.
type multi []Observer

// Multi combines observers into one that delivers every event to each,
// in argument order. Nil entries are dropped; Multi() of nothing (or of
// only nils) returns nil, the analyzers' "off" value.
func Multi(obs ...Observer) Observer {
	var live multi
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

func (m multi) DipCandidate(e DipCandidate) {
	for _, o := range m {
		o.DipCandidate(e)
	}
}

func (m multi) StallAccepted(e StallAccepted) {
	for _, o := range m {
		o.StallAccepted(e)
	}
}

func (m multi) StallRejected(e StallRejected) {
	for _, o := range m {
		o.StallRejected(e)
	}
}

func (m multi) Resync(e Resync) {
	for _, o := range m {
		o.Resync(e)
	}
}

func (m multi) QualityFlag(e QualityFlag) {
	for _, o := range m {
		o.QualityFlag(e)
	}
}

func (m multi) ChunkMerged(e ChunkMerged) {
	for _, o := range m {
		o.ChunkMerged(e)
	}
}

func (m multi) StageTiming(e StageTiming) {
	for _, o := range m {
		o.StageTiming(e)
	}
}

// Event type labels used in Records (the serialised event form).
const (
	TypeDipCandidate  = "dip_candidate"
	TypeStallAccepted = "stall_accepted"
	TypeStallRejected = "stall_rejected"
	TypeResync        = "resync"
	TypeQualityFlag   = "quality_flag"
	TypeChunkMerged   = "chunk_merged"
	TypeStageTiming   = "stage_timing"
)

// Record is the flat, serialisable form of any event — the unit stored
// by Ring and written by JSONL. Type is always set; the remaining fields
// are populated per event type. MarshalJSON emits exactly the fields
// that apply to the record's type, so each line carries only the fields
// that mean something for its type — but carries all of those, zero
// values included.
type Record struct {
	Type string `json:"type"`

	Pos        int64   `json:"pos,omitempty"`
	Start      int64   `json:"start,omitempty"`
	End        int64   `json:"end,omitempty"`
	Value      float64 `json:"value,omitempty"`
	Lo         float64 `json:"lo,omitempty"`
	Hi         float64 `json:"hi,omitempty"`
	StartS     float64 `json:"start_s,omitempty"`
	DurationS  float64 `json:"duration_s,omitempty"`
	Cycles     float64 `json:"cycles,omitempty"`
	Depth      float64 `json:"depth,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	Refresh    bool    `json:"refresh,omitempty"`
	Reason     string  `json:"reason,omitempty"`
	Cause      string  `json:"cause,omitempty"`
	Flags      string  `json:"flags,omitempty"`
	Retro      int     `json:"retro,omitempty"`
	Chunk      int     `json:"chunk,omitempty"`
	Stalls     int     `json:"stalls,omitempty"`
	Stage      string  `json:"stage,omitempty"`
	DurationNs int64   `json:"duration_ns,omitempty"`
	Samples    int64   `json:"samples,omitempty"`
}

// MarshalJSON serialises the record with exactly the field set of its
// event type: a field that applies to the type is always present (a
// dip at pos 0 keeps "pos":0, a stall with confidence 0 keeps
// "confidence":0), and a field of another event type never appears —
// so JSONL consumers and the /trace endpoint can distinguish "value is
// zero" from "field not applicable". Unknown types fall back to the
// plain struct encoding with zero fields omitted.
func (r Record) MarshalJSON() ([]byte, error) {
	switch r.Type {
	case TypeDipCandidate:
		return json.Marshal(struct {
			Type  string  `json:"type"`
			Pos   int64   `json:"pos"`
			Value float64 `json:"value"`
			Lo    float64 `json:"lo"`
			Hi    float64 `json:"hi"`
		}{r.Type, r.Pos, r.Value, r.Lo, r.Hi})
	case TypeStallAccepted:
		return json.Marshal(struct {
			Type       string  `json:"type"`
			Start      int64   `json:"start"`
			End        int64   `json:"end"`
			StartS     float64 `json:"start_s"`
			DurationS  float64 `json:"duration_s"`
			Cycles     float64 `json:"cycles"`
			Depth      float64 `json:"depth"`
			Confidence float64 `json:"confidence"`
			Refresh    bool    `json:"refresh"`
		}{r.Type, r.Start, r.End, r.StartS, r.DurationS, r.Cycles, r.Depth, r.Confidence, r.Refresh})
	case TypeStallRejected:
		return json.Marshal(struct {
			Type      string  `json:"type"`
			Start     int64   `json:"start"`
			End       int64   `json:"end"`
			DurationS float64 `json:"duration_s"`
			Depth     float64 `json:"depth"`
			Reason    string  `json:"reason"`
		}{r.Type, r.Start, r.End, r.DurationS, r.Depth, r.Reason})
	case TypeResync:
		return json.Marshal(struct {
			Type  string `json:"type"`
			Pos   int64  `json:"pos"`
			Cause string `json:"cause"`
		}{r.Type, r.Pos, r.Cause})
	case TypeQualityFlag:
		return json.Marshal(struct {
			Type  string `json:"type"`
			Pos   int64  `json:"pos"`
			Flags string `json:"flags"`
			Retro int    `json:"retro"`
		}{r.Type, r.Pos, r.Flags, r.Retro})
	case TypeChunkMerged:
		return json.Marshal(struct {
			Type   string `json:"type"`
			Chunk  int    `json:"chunk"`
			Start  int64  `json:"start"`
			End    int64  `json:"end"`
			Stalls int    `json:"stalls"`
		}{r.Type, r.Chunk, r.Start, r.End, r.Stalls})
	case TypeStageTiming:
		return json.Marshal(struct {
			Type       string `json:"type"`
			Stage      string `json:"stage"`
			DurationNs int64  `json:"duration_ns"`
			Samples    int64  `json:"samples"`
		}{r.Type, r.Stage, r.DurationNs, r.Samples})
	}
	type plain Record
	return json.Marshal(plain(r))
}

// Record converts the event to its serialisable form.
func (e DipCandidate) Record() Record {
	return Record{Type: TypeDipCandidate, Pos: e.Pos, Value: e.Value, Lo: e.Lo, Hi: e.Hi}
}

// Record converts the event to its serialisable form.
func (e StallAccepted) Record() Record {
	return Record{
		Type: TypeStallAccepted, Start: e.Start, End: e.End, StartS: e.StartS,
		DurationS: e.DurationS, Cycles: e.Cycles, Depth: e.Depth,
		Confidence: e.Confidence, Refresh: e.Refresh,
	}
}

// Record converts the event to its serialisable form.
func (e StallRejected) Record() Record {
	return Record{
		Type: TypeStallRejected, Start: e.Start, End: e.End,
		DurationS: e.DurationS, Depth: e.Depth, Reason: string(e.Reason),
	}
}

// Record converts the event to its serialisable form.
func (e Resync) Record() Record {
	return Record{Type: TypeResync, Pos: e.Pos, Cause: string(e.Cause)}
}

// Record converts the event to its serialisable form.
func (e QualityFlag) Record() Record {
	return Record{Type: TypeQualityFlag, Pos: e.Pos, Flags: e.Flags.String(), Retro: e.Retro}
}

// Record converts the event to its serialisable form.
func (e ChunkMerged) Record() Record {
	return Record{Type: TypeChunkMerged, Chunk: e.Chunk, Start: e.Lo, End: e.Hi, Stalls: e.Stalls}
}

// Record converts the event to its serialisable form.
func (e StageTiming) Record() Record {
	return Record{Type: TypeStageTiming, Stage: string(e.Stage), DurationNs: e.DurationNs, Samples: e.Samples}
}
