package emprof

import (
	"encoding/binary"
	"math"
	"testing"

	"emprof/internal/core"
)

// fuzzConfigs are the profiler configurations the fuzzer cycles through:
// the default plus variants stressing the short-window, no-smoothing and
// tight-threshold corners. All must validate.
func fuzzConfigs() []Config {
	base := DefaultConfig()
	narrow := base
	narrow.NormWindowS = 5e-6
	mid := base
	mid.NormWindowS = 50e-6
	raw := base
	raw.SmoothSamples = 1
	smooth := base
	smooth.SmoothSamples = 5
	tight := base
	tight.EnterThreshold = 0.2
	tight.ExitThreshold = 0.3
	// Probe-shift detection armed, alone and on the short window, so the
	// fuzzer exercises the shift tracker's interaction with every other
	// monitor path.
	shift := base
	shift.ProbeShiftRatio = 1.4
	shiftNarrow := narrow
	shiftNarrow.ProbeShiftRatio = 1.2
	return []Config{base, narrow, mid, raw, smooth, tight, shift, shiftNarrow}
}

// FuzzAnalyze feeds arbitrary sample data and config permutations through
// the batch, streaming, and parallel analyzers — optionally routing the
// capture through the probe drift+bump fault injector first, so the
// position-adaptive resync path sees adversarial inputs too. None may
// ever panic — including on NaN/Inf garbage — and on captures at least
// one normalisation window long all three must agree exactly (the batch
// analyzer clamps its window on shorter captures, where the pipelines
// legitimately differ). The parallel analyzer runs with a deliberately
// tiny chunk size so fuzz-sized inputs actually shard instead of falling
// back to the sequential path.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{}, uint8(0), false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}, uint8(1), false)
	// A busy level with one dip, in raw float bytes.
	seed := make([]byte, 0, 1024*8)
	var b [8]byte
	for i := 0; i < 1024; i++ {
		v := 1.0
		if i >= 500 && i < 520 {
			v = 0.05
		}
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		seed = append(seed, b[:]...)
	}
	f.Add(seed, uint8(1), false)
	// The same dip capture through the probe faults with the shift
	// detector armed (config 6).
	f.Add(seed, uint8(6), true)
	// A bump-shaped capture: busy level halves at the midpoint, the exact
	// shape the probe-shift resync exists for.
	bump := make([]byte, 0, 2048*8)
	for i := 0; i < 2048; i++ {
		v := 1.0
		if i >= 1024 {
			v = 1.0 / 2.35
		}
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		bump = append(bump, b[:]...)
	}
	f.Add(bump, uint8(7), false)
	// Non-finite and zero patterns.
	nasty := make([]byte, 0, 64*8)
	for i := 0; i < 64; i++ {
		v := math.NaN()
		switch i % 4 {
		case 1:
			v = math.Inf(1)
		case 2:
			v = 0
		case 3:
			v = 1e300
		}
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		nasty = append(nasty, b[:]...)
	}
	f.Add(nasty, uint8(3), true)

	cfgs := fuzzConfigs()
	f.Fuzz(func(t *testing.T, data []byte, sel uint8, probeFault bool) {
		n := len(data) / 8
		if n > 1<<15 {
			n = 1 << 15
		}
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		cfg := cfgs[int(sel)%len(cfgs)]
		const sampleRate, clockHz = 40e6, 1e9
		c := &Capture{Samples: samples, SampleRate: sampleRate, ClockHz: clockHz}
		if probeFault && n > 0 {
			out, _, err := InjectFaults(c, FaultSpec{
				ProbeDriftMM: 0.8,
				ProbeBumpMM:  1.75,
				ProbeBumpAtS: float64(n/2) / sampleRate,
				Seed:         uint64(sel) + 1,
			})
			if err != nil {
				t.Fatalf("InjectFaults: %v", err)
			}
			c = out
		}

		pb, err := Analyze(c, cfg)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		ps, err := AnalyzeStream(c, cfg)
		if err != nil {
			t.Fatalf("AnalyzeStream: %v", err)
		}
		pp := core.MustNewAnalyzer(cfg).ProfileParallel(c, core.ParallelOptions{
			Workers: 3, ChunkSamples: 1024,
		})
		// The parallel analyzer must be bit-identical to batch regardless
		// of capture length (it falls back to the batch path when too
		// short to shard, so no window-length carve-out applies).
		if pp.Misses != pb.Misses || pp.RefreshStalls != pb.RefreshStalls ||
			pp.Quality != pb.Quality || len(pp.Stalls) != len(pb.Stalls) {
			t.Fatalf("batch/parallel diverged: %d/%d/%v vs %d/%d/%v (n=%d)",
				pb.Misses, pb.RefreshStalls, pb.Quality, pp.Misses, pp.RefreshStalls, pp.Quality, n)
		}
		for i := range pb.Stalls {
			if pb.Stalls[i] != pp.Stalls[i] {
				t.Fatalf("stall %d diverged:\nbatch:    %+v\nparallel: %+v", i, pb.Stalls[i], pp.Stalls[i])
			}
		}

		window := int(cfg.NormWindowS * sampleRate)
		if window < 8 {
			window = 8
		}
		if n < window {
			return
		}
		if pb.Misses != ps.Misses || pb.RefreshStalls != ps.RefreshStalls {
			t.Fatalf("batch/stream diverged: %d/%d vs %d/%d (n=%d cfg=%d)",
				pb.Misses, pb.RefreshStalls, ps.Misses, ps.RefreshStalls, n, int(sel)%len(cfgs))
		}
		if pb.Quality != ps.Quality {
			t.Fatalf("quality diverged:\nbatch:  %v\nstream: %v", pb.Quality, ps.Quality)
		}
		if len(pb.Stalls) != len(ps.Stalls) {
			t.Fatalf("stall list lengths diverged: %d vs %d", len(pb.Stalls), len(ps.Stalls))
		}
		for i := range pb.Stalls {
			if pb.Stalls[i] != ps.Stalls[i] {
				t.Fatalf("stall %d diverged:\nbatch:  %+v\nstream: %+v", i, pb.Stalls[i], ps.Stalls[i])
			}
		}
	})
}
