package emprof_test

import (
	"os"
	"path/filepath"
	"testing"

	"emprof"
	"emprof/internal/cpu"
	"emprof/internal/em"
)

// TestCustomWorkloadEndToEnd drives a JSON-defined workload through the
// whole stack: build → simulate → save capture → load capture → profile
// (batch and streaming) — the exact path an external user of the library
// plus the two CLIs exercises.
func TestCustomWorkloadEndToEnd(t *testing.T) {
	spec := []byte(`{
	  "Name": "endtoend", "Seed": 5,
	  "Phases": [{
	    "Name": "main", "Region": 1, "Insts": 300000,
	    "LoadFrac": 0.3, "StoreFrac": 0.06,
	    "LoopLen": 40, "CodeBytes": 8192,
	    "WSBytes": 8388608, "HotBytes": 24576,
	    "ColdFrac": 0.0008,
	    "DepFrac": 0.45
	  }]
	}`)
	wl, err := emprof.CustomWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	run, err := emprof.Simulate(emprof.DeviceOlimex(), wl, emprof.CaptureOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Truth.Misses) < 20 {
		t.Fatalf("workload produced only %d misses", len(run.Truth.Misses))
	}

	path := filepath.Join(t.TempDir(), "run.cap")
	if err := em.SaveCapture(path, run.Capture); err != nil {
		t.Fatal(err)
	}
	loaded, err := em.LoadCapture(path)
	if err != nil {
		t.Fatal(err)
	}

	batch, err := emprof.Analyze(loaded, emprof.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream, err := emprof.AnalyzeStream(loaded, emprof.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Stalls) == 0 {
		t.Fatal("no stalls detected end to end")
	}
	if len(batch.Stalls) != len(stream.Stalls) {
		t.Fatalf("batch %d vs stream %d stalls", len(batch.Stalls), len(stream.Stalls))
	}
	// The detector should land in the neighbourhood of the ground-truth
	// *event* count: stall intervals merged at the signal resolution and
	// long enough to be attributable (raw miss records include hidden and
	// overlapped misses a signal cannot separate — Fig. 3).
	events := 0
	for _, iv := range cpu.MergeStalls(run.Truth.Stalls, 50) {
		if iv.StalledCycles() >= 90 && 2*iv.StalledCycles() >= iv.Cycles() {
			events++
		}
	}
	if len(batch.Stalls) < events*2/3 || len(batch.Stalls) > events*3/2 {
		t.Fatalf("detected %d stalls for %d ground-truth events (%d raw misses)",
			len(batch.Stalls), events, len(run.Truth.Misses))
	}
}

// TestLoadWorkloadFile checks the file-based workload entry point used by
// `emsim -workload file:...`.
func TestLoadWorkloadFile(t *testing.T) {
	spec := `{
	  "Phases": [{
	    "Name": "x", "Region": 1, "Insts": 5000,
	    "LoadFrac": 0.2, "LoopLen": 32, "CodeBytes": 4096,
	    "WSBytes": 1048576, "HotBytes": 16384, "DepFrac": 0.3
	  }]
	}`
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	wl, err := emprof.LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := emprof.Simulate(emprof.DeviceSamsung(), wl, emprof.CaptureOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := emprof.LoadWorkload(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing workload file accepted")
	}
}

// TestOoODeviceVariant checks that an OoO-windowed device runs through
// the public API and stalls less per miss than its in-order twin — the
// paper's Section II-B contrast surfaced as a library capability.
func TestOoODeviceVariant(t *testing.T) {
	mk := func(window int) (stallPerMiss float64) {
		dev := emprof.DeviceSESC()
		dev.CPU.FetchQueue = 48
		dev.CPU.OoOWindow = window
		wl, err := emprof.SPECWorkload("mcf", 0.05)
		if err != nil {
			t.Fatal(err)
		}
		run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: 1, NoiseFree: true, BandwidthHz: 50e6})
		if err != nil {
			t.Fatal(err)
		}
		if len(run.Truth.Misses) == 0 {
			t.Fatal("no misses")
		}
		return float64(run.Truth.FullStallCycles) / float64(len(run.Truth.Misses))
	}
	inOrder, ooo := mk(0), mk(32)
	if ooo >= inOrder {
		t.Fatalf("OoO stall/miss %.1f not below in-order %.1f", ooo, inOrder)
	}
}
