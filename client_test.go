package emprof_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"emprof"
	"emprof/internal/service"
)

// startDaemon spins up an in-process emprofd (the exact handler
// cmd/emprofd serves) behind httptest.
func startDaemon(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// simCapture simulates a real microbenchmark capture on the Olimex
// model — the same signal an emsim run would stream at a daemon.
func simCapture(t *testing.T) *emprof.Capture {
	t.Helper()
	wl, err := emprof.Microbenchmark(96, 8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := emprof.Simulate(emprof.DeviceOlimex(), wl, emprof.CaptureOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return run.Capture
}

// TestClientEndToEnd is the acceptance test for the profiling service: a
// simulated capture streamed to the daemon in several chunks must yield,
// on finalize, a profile bit-identical to emprof.Analyze over the same
// capture; the mid-stream snapshot must be causal.
func TestClientEndToEnd(t *testing.T) {
	capture := simCapture(t)
	want, err := emprof.Analyze(capture, emprof.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Stalls) < 10 {
		t.Fatalf("capture yields only %d stalls; weak test", len(want.Stalls))
	}

	_, ts := startDaemon(t, service.Config{})
	client := emprof.NewClient(ts.URL)
	// Force many upload requests: at least ceil(n/chunk) >= 3 chunks.
	client.ChunkSamples = len(capture.Samples)/5 + 1

	ctx := context.Background()
	id, err := client.CreateSession(ctx, emprof.SessionSpec{
		SampleRate: capture.SampleRate,
		ClockHz:    capture.ClockHz,
		Device:     "olimex",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Stream the first three chunks, snapshot, then the rest.
	cut := 3 * client.ChunkSamples
	if cut > len(capture.Samples) {
		t.Fatal("capture too short for the chunking under test")
	}
	head := &emprof.Capture{Samples: capture.Samples[:cut], SampleRate: capture.SampleRate, ClockHz: capture.ClockHz}
	tail := &emprof.Capture{Samples: capture.Samples[cut:], SampleRate: capture.SampleRate, ClockHz: capture.ClockHz}
	if err := client.StreamCapture(ctx, id, head); err != nil {
		t.Fatal(err)
	}
	snap, err := client.Profile(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SamplesIngested != int64(cut) {
		t.Fatalf("mid-stream ingested %d, want %d", snap.SamplesIngested, cut)
	}
	if snap.SamplesDecided > snap.SamplesIngested {
		t.Fatalf("decided %d ahead of ingested %d", snap.SamplesDecided, snap.SamplesIngested)
	}
	for _, st := range snap.Profile.Stalls {
		if int64(st.EndSample) > snap.SamplesDecided {
			t.Fatalf("non-causal stall: ends at %d with %d decided", st.EndSample, snap.SamplesDecided)
		}
	}

	if err := client.StreamCapture(ctx, id, tail); err != nil {
		t.Fatal(err)
	}
	got, err := client.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-identical through the service, the streaming pipeline, and the
	// JSON round trip (Go marshals float64 at full round-trip precision).
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed profile differs from batch Analyze:\n got: misses=%d stalls=%d cycles=%v\nwant: misses=%d stalls=%d cycles=%v",
			got.Misses, len(got.Stalls), got.StallCycles, want.Misses, len(want.Stalls), want.StallCycles)
	}
	// Mid-stream stalls were a prefix of the final list.
	if n := len(snap.Profile.Stalls); n > 0 && !reflect.DeepEqual(snap.Profile.Stalls, got.Stalls[:n]) {
		t.Fatal("mid-stream snapshot is not a prefix of the final profile")
	}

	// The session is gone after finalize.
	if _, err := client.Profile(ctx, id); err == nil {
		t.Fatal("finalized session still reachable")
	}
	list, err := client.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("%d sessions left after finalize", len(list))
	}
}

// TestClientRetriesBackpressure checks the retry/backoff path: a daemon
// that answers 429 a few times before accepting must not surface an
// error, and non-transient failures must not be retried.
func TestClientRetriesBackpressure(t *testing.T) {
	var rejects atomic.Int32
	rejects.Store(2)
	_, ts := startDaemon(t, service.Config{})
	// Front the daemon with a shim that rejects the first two ingests.
	inner := ts.Client()
	shim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && rejects.Add(-1) >= 0 {
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"full"}`))
			return
		}
		req, err := http.NewRequest(r.Method, ts.URL+r.URL.Path, r.Body)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		req.Header = r.Header
		resp, err := inner.Do(req)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32*1024)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if rerr != nil {
				break
			}
		}
	}))
	defer shim.Close()

	client := emprof.NewClient(shim.URL)
	client.RetryBaseDelay = 1 // keep the test fast
	ctx := context.Background()
	id, err := client.CreateSession(ctx, emprof.SessionSpec{SampleRate: 40e6, ClockHz: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.PushSamples(ctx, id, make([]float64, 100)); err != nil {
		t.Fatalf("push through transient 429s: %v", err)
	}
	snap, err := client.Profile(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SamplesIngested != 100 {
		t.Fatalf("ingested %d after retries, want exactly 100 (no double-count)", snap.SamplesIngested)
	}

	// A 404 is terminal: no retry loop, immediate error, and it matches
	// the exported sentinel through errors.Is/As.
	_, err = client.Profile(ctx, "doesnotexist")
	if err == nil {
		t.Fatal("profile of unknown session succeeded")
	}
	if !errors.Is(err, emprof.ErrSessionNotFound) {
		t.Fatalf("want ErrSessionNotFound, got %v", err)
	}
	var ae *emprof.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("want APIError 404, got %v", err)
	}
	if errors.Is(err, emprof.ErrBadCapture) {
		t.Fatalf("404 must not match ErrBadCapture: %v", err)
	}
}

// TestClientRetriesRouterStatuses checks that plain pushes ride out the
// statuses a fleet router emits for transient shard trouble — 502 (shard
// unreachable) and 503 (session pinned mid-hand-off) — exactly like 429,
// while a network error on an untagged push fails immediately: without
// an offset tag the client cannot know how much of the body landed.
func TestClientRetriesRouterStatuses(t *testing.T) {
	_, ts := startDaemon(t, service.Config{})
	inner := ts.Client()
	codes := []int{http.StatusBadGateway, http.StatusServiceUnavailable}
	var hits atomic.Int32
	shim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/samples") {
			if n := int(hits.Add(1)) - 1; n < len(codes) {
				w.WriteHeader(codes[n])
				w.Write([]byte(`{"error":"shard unavailable"}`))
				return
			}
		}
		req, err := http.NewRequest(r.Method, ts.URL+r.URL.Path, r.Body)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		req.Header = r.Header
		resp, err := inner.Do(req)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32*1024)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if rerr != nil {
				break
			}
		}
	}))
	defer shim.Close()

	client := emprof.NewClient(shim.URL)
	client.RetryBaseDelay = 1
	ctx := context.Background()
	id, err := client.CreateSession(ctx, emprof.SessionSpec{SampleRate: 40e6, ClockHz: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.PushSamples(ctx, id, make([]float64, 64)); err != nil {
		t.Fatalf("push through 502/503: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("push took %d attempts, want 3 (502, 503, success)", got)
	}
	snap, err := client.Profile(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SamplesIngested != 64 {
		t.Fatalf("ingested %d after retries, want exactly 64", snap.SamplesIngested)
	}

	// Network error on an untagged push: exactly one attempt, surfaced.
	var drops atomic.Int32
	killer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		drops.Add(1)
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Fatal("test server not hijackable")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}))
	defer killer.Close()
	dead := emprof.NewClient(killer.URL)
	dead.RetryBaseDelay = 1
	if err := dead.PushSamples(ctx, "x", make([]float64, 8)); err == nil {
		t.Fatal("push over severed connection succeeded")
	}
	if got := drops.Load(); got != 1 {
		t.Fatalf("untagged push retried a network error: %d attempts, want 1", got)
	}
}

// TestClient504Semantics pins the split the router's status contract
// creates: 504 means a shard connection failed mid-request and the
// shard may have ingested a prefix of the body, so a plain push must
// fail immediately (resending the whole body could double-count the
// prefix), while an offset-tagged push — idempotent by construction —
// retries it like any transient status.
func TestClient504Semantics(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusGatewayTimeout)
		w.Write([]byte(`{"error":"fleet: shard unreachable mid-request"}`))
	}))
	defer ts.Close()
	client := emprof.NewClient(ts.URL)
	client.RetryBaseDelay = 1
	client.MaxRetries = 3
	ctx := context.Background()

	err := client.PushSamples(ctx, "abc", make([]float64, 8))
	var ae *emprof.APIError
	if err == nil || !errors.As(err, &ae) || ae.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("plain push on 504: %v, want APIError 504", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("plain push attempted %d times on 504, want exactly 1 (partial ingest possible)", got)
	}

	hits.Store(0)
	if _, err := client.PushSamplesAt(ctx, "abc", 0, make([]float64, 8)); !errors.Is(err, emprof.ErrRetriesExhausted) {
		t.Fatalf("tagged push on persistent 504: %v, want ErrRetriesExhausted", err)
	}
	if got := hits.Load(); got != 4 {
		t.Fatalf("tagged push attempted %d times on 504, want 4 (initial + 3 retries)", got)
	}
}

// TestClientTrace streams a capture and fetches the session's decision
// trace: the accepted-stall events must reconcile with the final profile.
func TestClientTrace(t *testing.T) {
	capture := simCapture(t)
	_, ts := startDaemon(t, service.Config{})
	client := emprof.NewClient(ts.URL)
	ctx := context.Background()
	id, err := client.CreateSession(ctx, emprof.SessionSpec{
		SampleRate: capture.SampleRate, ClockHz: capture.ClockHz,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.StreamCapture(ctx, id, capture); err != nil {
		t.Fatal(err)
	}
	// The trace is causal, like the snapshot: both reflect what the
	// pipeline has decided so far, so their stall counts must agree.
	snap, err := client.Profile(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := client.Trace(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Enabled {
		t.Fatal("daemon tracing should be enabled by default")
	}
	prof, err := client.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for _, rec := range tr.Records {
		if rec.Type == "stall_accepted" {
			accepted++
		}
	}
	if accepted == 0 || accepted != len(snap.Profile.Stalls) {
		t.Errorf("trace has %d stall_accepted events, snapshot has %d stalls",
			accepted, len(snap.Profile.Stalls))
	}
	// Finalize drains the detector's lookahead tail, so the final profile
	// can only add stalls past the traced ones.
	if accepted > len(prof.Stalls) {
		t.Errorf("trace has %d stall_accepted events, final profile only %d stalls",
			accepted, len(prof.Stalls))
	}

	if _, err := client.Trace(ctx, id); !errors.Is(err, emprof.ErrSessionNotFound) {
		t.Errorf("trace of finalized session: got %v, want ErrSessionNotFound", err)
	}
}

// TestClientOldDaemon fronts the daemon with a facade serving exactly the
// first emprofd release's route table — session routes under /v1, no
// per-session trace endpoint — and checks that Trace surfaces a distinct
// ErrUnsupportedEndpoint (the mux's plain-text 404) without disturbing
// any other call on the same client.
func TestClientOldDaemon(t *testing.T) {
	capture := simCapture(t)
	want, err := emprof.Analyze(capture, emprof.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := startDaemon(t, service.Config{})
	inner := srv.Handler()
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/trace") {
			// The endpoint postdates this daemon: its mux answers with a
			// bare plain-text 404, no service error body.
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer old.Close()

	client := emprof.NewClient(old.URL)
	ctx := context.Background()
	id, err := client.CreateSession(ctx, emprof.SessionSpec{
		SampleRate: capture.SampleRate, ClockHz: capture.ClockHz,
	})
	if err != nil {
		t.Fatalf("create against old daemon: %v", err)
	}
	if err := client.StreamCapture(ctx, id, capture); err != nil {
		t.Fatal(err)
	}

	// Trace against a daemon that predates the endpoint: the body-less
	// 404 means "route absent", not "session gone".
	_, terr := client.Trace(ctx, id)
	if !errors.Is(terr, emprof.ErrUnsupportedEndpoint) {
		t.Fatalf("trace on old daemon: got %v, want ErrUnsupportedEndpoint", terr)
	}
	if errors.Is(terr, emprof.ErrSessionNotFound) {
		t.Fatalf("trace on old daemon must not read as a missing session: %v", terr)
	}

	// The failed Trace must leave the client untouched: the session is
	// still addressable on /v1 and finalizes to the batch result.
	if _, err := client.Profile(ctx, id); err != nil {
		t.Fatalf("profile after unsupported trace: %v", err)
	}
	got, err := client.Finalize(ctx, id)
	if err != nil {
		t.Fatalf("finalize after unsupported trace: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("profile via old daemon differs from Analyze")
	}

	// A genuine 404 (the service's JSON error body on an existing route)
	// still reads as a missing session, not an unsupported endpoint.
	_, err = client.Profile(ctx, id)
	if !errors.Is(err, emprof.ErrSessionNotFound) {
		t.Fatalf("finalized session: got %v, want ErrSessionNotFound", err)
	}
	if errors.Is(err, emprof.ErrUnsupportedEndpoint) {
		t.Fatalf("service 404 must not read as unsupported endpoint: %v", err)
	}
}
