package emprof

import (
	"errors"
	"fmt"
	"net/http"
)

// Sentinel errors reported by the analysis API and the daemon client.
// Match them with errors.Is; daemon responses additionally expose status
// and message via errors.As on *APIError.
var (
	// ErrBadCapture marks a capture whose data or acquisition metadata
	// cannot be analysed (nil capture, or samples with a non-positive
	// sample rate or clock frequency). The daemon client also reports it
	// for HTTP 400 responses.
	ErrBadCapture = errors.New("emprof: bad capture")
	// ErrBadConfig marks an invalid profiler configuration; the wrapped
	// message names the offending field.
	ErrBadConfig = errors.New("emprof: bad config")
	// ErrSessionNotFound is reported by the daemon client when the
	// daemon answers 404 with its JSON error body: the route exists but
	// the addressed profiling session does not — it was finalized,
	// collected by the idle TTL, or never created.
	ErrSessionNotFound = errors.New("emprof: session not found")
	// ErrUnsupportedEndpoint is reported by the daemon client when the
	// daemon answers 404 without the service's JSON error body — the
	// route is absent from its mux, i.e. the daemon predates the
	// requested endpoint (for example Trace against an emprofd built
	// before /v1/sessions/{id}/trace existed).
	ErrUnsupportedEndpoint = errors.New("emprof: endpoint not supported by daemon")
	// ErrRetriesExhausted is reported by the daemon client when a request
	// kept failing transiently until the retry budget ran out; the last
	// underlying failure is wrapped alongside it.
	ErrRetriesExhausted = errors.New("emprof: retries exhausted")
	// ErrWindowNotRetained is reported by the daemon client when the
	// daemon answers 410: the queried profile windows existed but the
	// store's retention policy has evicted them — unlike a 404, the data
	// is gone for good and no retry or wider query will bring it back.
	ErrWindowNotRetained = errors.New("emprof: profile windows no longer retained")
)

// APIError is a non-2xx emprofd response, carrying the HTTP status and
// the daemon's error message. It matches the corresponding sentinel
// errors under errors.Is: a 404 carrying the daemon's JSON error body
// is ErrSessionNotFound, a body-less 404 (route absent from the mux)
// is ErrUnsupportedEndpoint, a 400 is ErrBadCapture, and a 410 is
// ErrWindowNotRetained, so callers can branch without inspecting status
// codes.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("emprofd: HTTP %d", e.StatusCode)
	}
	return fmt.Sprintf("emprofd: HTTP %d: %s", e.StatusCode, e.Message)
}

// Is maps daemon status codes onto the package's sentinel errors. Only
// a 404 that carried the service's JSON error body means "the session
// does not exist"; a 404 without one means the daemon's mux has no such
// route at all (daemon too old for the endpoint).
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrSessionNotFound:
		return e.StatusCode == http.StatusNotFound && e.Message != ""
	case ErrUnsupportedEndpoint:
		return e.StatusCode == http.StatusNotFound && e.Message == ""
	case ErrBadCapture:
		return e.StatusCode == http.StatusBadRequest
	case ErrWindowNotRetained:
		return e.StatusCode == http.StatusGone
	}
	return false
}

// validateCapture gates every analysis entry point: an empty capture is
// fine (it profiles to an empty Profile), but samples without coherent
// acquisition metadata would silently produce nonsense timings.
func validateCapture(c *Capture) error {
	if c == nil {
		return fmt.Errorf("%w: nil capture", ErrBadCapture)
	}
	if len(c.Samples) == 0 {
		return nil
	}
	if !(c.SampleRate > 0) {
		return fmt.Errorf("%w: sample rate %v with %d samples", ErrBadCapture, c.SampleRate, len(c.Samples))
	}
	if !(c.ClockHz > 0) {
		return fmt.Errorf("%w: clock %v Hz with %d samples", ErrBadCapture, c.ClockHz, len(c.Samples))
	}
	return nil
}
