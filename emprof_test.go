package emprof

import (
	"math"
	"testing"
)

func TestEndToEndMicrobenchmark(t *testing.T) {
	// The repository's headline result, end to end through the public
	// API: the Fig. 6 microbenchmark on the Olimex model, profiled from
	// the synthesized EM signal, counts its engineered misses.
	const tm = 256
	w, err := Microbenchmark(tm, 8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Simulate(DeviceOlimex(), w, CaptureOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	slice, err := run.SliceRegion(3) // workloads.RegionMisses
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Analyze(slice, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := prof.CountAccuracy(tm).Percent; acc < 97 {
		t.Fatalf("count accuracy %.2f%%, want >= 97%% (paper: >= 99%%)", acc)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	mk := func() *Run {
		w, err := SPECWorkload("mcf", 0.1)
		if err != nil {
			t.Fatal(err)
		}
		run, err := Simulate(DeviceSamsung(), w, CaptureOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	a, b := mk(), mk()
	if a.Truth.Cycles != b.Truth.Cycles || len(a.Truth.Misses) != len(b.Truth.Misses) {
		t.Fatal("simulation not deterministic")
	}
	for i := range a.Capture.Samples {
		if a.Capture.Samples[i] != b.Capture.Samples[i] {
			t.Fatal("captures differ between identical runs")
		}
	}
}

func TestCaptureOptionBandwidth(t *testing.T) {
	w, _ := SPECWorkload("vpr", 0.05)
	run, err := Simulate(DeviceOlimex(), w, CaptureOptions{Seed: 1, BandwidthHz: 20e6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(run.Capture.SampleRate-20e6) > 1e6 {
		t.Fatalf("sample rate %v, want ~20 MHz", run.Capture.SampleRate)
	}
}

func TestPowerProxyOption(t *testing.T) {
	w, _ := SPECWorkload("vpr", 0.05)
	run, err := Simulate(DeviceSESC(), w, CaptureOptions{Seed: 1, NoiseFree: true, PowerProxy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.PowerTrace) == 0 || run.PowerRate != 50e6 {
		t.Fatalf("power proxy missing: %d samples at %v Hz", len(run.PowerTrace), run.PowerRate)
	}
	// The proxy averages 20 cycles per sample at 1 GHz.
	wantLen := int(run.Truth.Cycles / 20)
	if len(run.PowerTrace) < wantLen || len(run.PowerTrace) > wantLen+1 {
		t.Fatalf("proxy length %d, want ~%d", len(run.PowerTrace), wantLen)
	}
}

func TestMemoryProbeOption(t *testing.T) {
	w, err := Microbenchmark(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Simulate(DeviceOlimex(), w, CaptureOptions{Seed: 1, MemoryProbe: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.MemCapture == nil || len(run.MemCapture.Samples) == 0 {
		t.Fatal("memory-probe capture missing")
	}
}

func TestDeviceAccessors(t *testing.T) {
	if len(Devices()) != 3 {
		t.Fatal("three physical devices expected")
	}
	if _, err := DeviceByName("olimex"); err != nil {
		t.Fatal(err)
	}
	if _, err := DeviceByName("pixel"); err == nil {
		t.Fatal("unknown device accepted")
	}
	if DeviceSESC().CPU.Width != 4 {
		t.Fatal("SESC device must be 4-wide")
	}
}

func TestWorkloadConstructors(t *testing.T) {
	if _, err := Microbenchmark(0, 1); err == nil {
		t.Error("TM=0 accepted")
	}
	if _, err := SPECWorkload("quake3", 1); err == nil {
		t.Error("unknown SPEC name accepted")
	}
	w := BootWorkload(0.05, 3)
	if w == nil {
		t.Fatal("boot workload nil")
	}
}

func TestAnalyzeValidatesConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnterThreshold = 2
	if _, err := Analyze(&Capture{}, cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSliceRegionErrors(t *testing.T) {
	w, _ := SPECWorkload("vpr", 0.02)
	run, err := Simulate(DeviceOlimex(), w, CaptureOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.SliceRegion(199); err == nil {
		t.Fatal("absent region accepted")
	}
}

// TestSliceCyclesRounding pins the window arithmetic: lo floors, hi
// ceils, so a cycle range always maps to the whole samples covering it.
// The old behaviour truncated both ends, silently dropping the final
// partial sample of every range.
func TestSliceCyclesRounding(t *testing.T) {
	// 100 samples at 20 cycles/sample.
	r := &Run{Capture: &Capture{Samples: make([]float64, 100), SampleRate: 50e6, ClockHz: 1e9}}
	cases := []struct {
		lo, hi uint64
		want   int
	}{
		{0, 2000, 100}, // exact full range
		{0, 1, 1},      // sub-sample range still yields its covering sample
		{0, 1999, 100}, // partial final sample included (old code: 99)
		{10, 30, 2},    // straddles a sample boundary: both samples covered
		{20, 40, 1},    // exactly one sample
		{40, 40, 0},    // empty range
		{1990, 2000, 1},
	}
	for _, tc := range cases {
		got := r.SliceCycles(tc.lo, tc.hi)
		if len(got.Samples) != tc.want {
			t.Errorf("SliceCycles(%d, %d) = %d samples, want %d", tc.lo, tc.hi, len(got.Samples), tc.want)
		}
	}
	// No sample-rate metadata: empty slice, not a panic or Inf index.
	degenerate := &Run{Capture: &Capture{Samples: make([]float64, 10)}}
	if got := degenerate.SliceCycles(0, 100); len(got.Samples) != 0 {
		t.Fatalf("degenerate SliceCycles returned %d samples", len(got.Samples))
	}
}

// TestSliceRegionCoversGroundTruthStalls is the end-to-end regression for
// the SliceCycles fix: every ground-truth stall inside a region's cycle
// window must land within the region's sub-capture, including stalls
// touching the final, partially-covered sample.
func TestSliceRegionCoversGroundTruthStalls(t *testing.T) {
	w, err := Microbenchmark(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Simulate(DeviceOlimex(), w, CaptureOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const region = 3 // workloads.RegionMisses
	lo, hi, ok := run.RegionWindow(region)
	if !ok {
		t.Fatal("miss region absent")
	}
	slice := run.SliceCycles(lo, hi)
	cps := run.Capture.CyclesPerSample()
	first := int(math.Floor(float64(lo) / cps))
	checked := 0
	for _, s := range run.Truth.Stalls {
		if s.Start < lo || s.End > hi {
			continue
		}
		checked++
		// The sample containing the stall's last cycle must be in range.
		last := int(float64(s.End-1) / cps)
		if last-first >= len(slice.Samples) {
			t.Fatalf("stall [%d, %d) maps to sample %d, beyond slice of %d samples (first=%d)",
				s.Start, s.End, last, len(slice.Samples), first)
		}
	}
	if checked == 0 {
		t.Fatal("no ground-truth stalls inside the miss region")
	}
}

// TestAnalyzeParallelMatchesAnalyze checks the public parallel entry
// point end to end: identical profiles on a clean simulated capture and
// on a fault-impaired one, for several worker counts.
func TestAnalyzeParallelMatchesAnalyze(t *testing.T) {
	w, err := Microbenchmark(128, 8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Simulate(DeviceOlimex(), w, CaptureOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	impaired, _, err := InjectFaults(run.Capture, FaultSpec{
		DropoutRate: 0.001, GainStepsPerS: 100, NaNRate: 1e-4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for name, c := range map[string]*Capture{"clean": run.Capture, "faulted": impaired} {
		want, err := Analyze(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 4} {
			got, err := AnalyzeParallel(c, cfg, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got.Misses != want.Misses || got.StallCycles != want.StallCycles ||
				got.Quality != want.Quality || len(got.Stalls) != len(want.Stalls) {
				t.Fatalf("%s capture, %d workers: parallel %d misses/%v quality, sequential %d/%v",
					name, workers, got.Misses, got.Quality, want.Misses, want.Quality)
			}
			for i := range want.Stalls {
				if got.Stalls[i] != want.Stalls[i] {
					t.Fatalf("%s capture, %d workers: stall %d diverged", name, workers, i)
				}
			}
		}
	}
}

func TestAnalyzeParallelValidatesConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExitThreshold = -1
	if _, err := AnalyzeParallel(&Capture{}, cfg, 4); err == nil {
		t.Fatal("invalid config accepted")
	}
}
