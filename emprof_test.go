package emprof

import (
	"math"
	"testing"
)

func TestEndToEndMicrobenchmark(t *testing.T) {
	// The repository's headline result, end to end through the public
	// API: the Fig. 6 microbenchmark on the Olimex model, profiled from
	// the synthesized EM signal, counts its engineered misses.
	const tm = 256
	w, err := Microbenchmark(tm, 8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Simulate(DeviceOlimex(), w, CaptureOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	slice, err := run.SliceRegion(3) // workloads.RegionMisses
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Analyze(slice, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := prof.CountAccuracy(tm).Percent; acc < 97 {
		t.Fatalf("count accuracy %.2f%%, want >= 97%% (paper: >= 99%%)", acc)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	mk := func() *Run {
		w, err := SPECWorkload("mcf", 0.1)
		if err != nil {
			t.Fatal(err)
		}
		run, err := Simulate(DeviceSamsung(), w, CaptureOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	a, b := mk(), mk()
	if a.Truth.Cycles != b.Truth.Cycles || len(a.Truth.Misses) != len(b.Truth.Misses) {
		t.Fatal("simulation not deterministic")
	}
	for i := range a.Capture.Samples {
		if a.Capture.Samples[i] != b.Capture.Samples[i] {
			t.Fatal("captures differ between identical runs")
		}
	}
}

func TestCaptureOptionBandwidth(t *testing.T) {
	w, _ := SPECWorkload("vpr", 0.05)
	run, err := Simulate(DeviceOlimex(), w, CaptureOptions{Seed: 1, BandwidthHz: 20e6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(run.Capture.SampleRate-20e6) > 1e6 {
		t.Fatalf("sample rate %v, want ~20 MHz", run.Capture.SampleRate)
	}
}

func TestPowerProxyOption(t *testing.T) {
	w, _ := SPECWorkload("vpr", 0.05)
	run, err := Simulate(DeviceSESC(), w, CaptureOptions{Seed: 1, NoiseFree: true, PowerProxy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.PowerTrace) == 0 || run.PowerRate != 50e6 {
		t.Fatalf("power proxy missing: %d samples at %v Hz", len(run.PowerTrace), run.PowerRate)
	}
	// The proxy averages 20 cycles per sample at 1 GHz.
	wantLen := int(run.Truth.Cycles / 20)
	if len(run.PowerTrace) < wantLen || len(run.PowerTrace) > wantLen+1 {
		t.Fatalf("proxy length %d, want ~%d", len(run.PowerTrace), wantLen)
	}
}

func TestMemoryProbeOption(t *testing.T) {
	w, err := Microbenchmark(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Simulate(DeviceOlimex(), w, CaptureOptions{Seed: 1, MemoryProbe: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.MemCapture == nil || len(run.MemCapture.Samples) == 0 {
		t.Fatal("memory-probe capture missing")
	}
}

func TestDeviceAccessors(t *testing.T) {
	if len(Devices()) != 3 {
		t.Fatal("three physical devices expected")
	}
	if _, err := DeviceByName("olimex"); err != nil {
		t.Fatal(err)
	}
	if _, err := DeviceByName("pixel"); err == nil {
		t.Fatal("unknown device accepted")
	}
	if DeviceSESC().CPU.Width != 4 {
		t.Fatal("SESC device must be 4-wide")
	}
}

func TestWorkloadConstructors(t *testing.T) {
	if _, err := Microbenchmark(0, 1); err == nil {
		t.Error("TM=0 accepted")
	}
	if _, err := SPECWorkload("quake3", 1); err == nil {
		t.Error("unknown SPEC name accepted")
	}
	w := BootWorkload(0.05, 3)
	if w == nil {
		t.Fatal("boot workload nil")
	}
}

func TestAnalyzeValidatesConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnterThreshold = 2
	if _, err := Analyze(&Capture{}, cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSliceRegionErrors(t *testing.T) {
	w, _ := SPECWorkload("vpr", 0.02)
	run, err := Simulate(DeviceOlimex(), w, CaptureOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.SliceRegion(199); err == nil {
		t.Fatal("absent region accepted")
	}
}
