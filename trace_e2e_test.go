package emprof_test

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"emprof"
	"emprof/internal/cpu"
	"emprof/internal/service"
)

// resolvableEvents reduces raw ground-truth stall intervals to the events
// a 40 MHz EM signal can actually separate: intervals merged at the
// signal's resolution, long enough to clear the minimum-stall criterion,
// and mostly-stalled (the same reduction integration_test.go applies).
func resolvableEvents(truth []cpu.StallInterval) []cpu.StallInterval {
	var out []cpu.StallInterval
	for _, iv := range cpu.MergeStalls(truth, 50) {
		if iv.StalledCycles() >= 90 && 2*iv.StalledCycles() >= iv.Cycles() {
			out = append(out, iv)
		}
	}
	return out
}

// matchAccepted counts the truth events overlapped by at least one
// stall_accepted trace record, mirroring Profile.ValidateAgainst's
// interval matching (one sample period of tolerance on each side).
func matchAccepted(records []emprof.TraceRecord, truth []cpu.StallInterval, cps float64) (matched, accepted int) {
	type span struct{ lo, hi float64 }
	var det []span
	for _, r := range records {
		if r.Type != "stall_accepted" {
			continue
		}
		accepted++
		lo := float64(r.Start) * cps
		det = append(det, span{lo - cps, lo + r.Cycles + cps})
	}
	sort.Slice(det, func(i, j int) bool { return det[i].lo < det[j].lo })
	for _, t := range truth {
		tlo, thi := float64(t.Start), float64(t.End)
		for _, d := range det {
			if d.lo > thi {
				break
			}
			if d.hi >= tlo {
				matched++
				break
			}
		}
	}
	return matched, accepted
}

// TestTraceEndToEnd is the acceptance test for the decision-trace layer:
// a simulated microbenchmark capture is replayed through both trace
// surfaces — the emprof -trace JSONL recorder and the daemon's
// /v1/sessions/{id}/trace ring behind httptest — and every resolvable
// ground-truth miss must be covered by at least one StallAccepted event.
func TestTraceEndToEnd(t *testing.T) {
	wl, err := emprof.Microbenchmark(96, 8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := emprof.Simulate(emprof.DeviceOlimex(), wl, emprof.CaptureOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	capture := run.Capture
	truth := resolvableEvents(run.Truth.Stalls)
	if len(truth) < 50 {
		t.Fatalf("only %d resolvable ground-truth events; weak test", len(truth))
	}
	cps := capture.ClockHz / capture.SampleRate

	// Surface 1: the CLI recorder path — batch analysis with a JSONL
	// observer, exactly what `emprof -trace out.jsonl` wires up.
	var buf bytes.Buffer
	rec := emprof.NewTraceJSONL(&buf)
	an, err := emprof.NewAnalyzer(emprof.DefaultConfig(), emprof.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Run(context.Background(), capture); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	var jsonlRecords []emprof.TraceRecord
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r emprof.TraceRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		jsonlRecords = append(jsonlRecords, r)
	}
	if matched, accepted := matchAccepted(jsonlRecords, truth, cps); matched != len(truth) {
		t.Errorf("JSONL trace: %d/%d ground-truth misses covered by a stall_accepted event (%d accepted total)",
			matched, len(truth), accepted)
	}

	// Surface 2: the service path — stream the capture to an in-process
	// daemon and pull the session's trace ring. The ring is causal, so
	// pad the stream with busy-level samples to push the detector's
	// lookahead past the last real stall before fetching.
	_, ts := startDaemon(t, service.Config{TraceRing: 1 << 15})
	client := emprof.NewClient(ts.URL)
	ctx := context.Background()
	id, err := client.CreateSession(ctx, emprof.SessionSpec{
		SampleRate: capture.SampleRate, ClockHz: capture.ClockHz, Device: "olimex",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.StreamCapture(ctx, id, capture); err != nil {
		t.Fatal(err)
	}
	level := busyLevel(capture.Samples)
	pad := make([]float64, 1<<14)
	for i := range pad {
		pad[i] = level
	}
	if err := client.PushSamples(ctx, id, pad); err != nil {
		t.Fatal(err)
	}
	tr, err := client.Trace(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Enabled || tr.Dropped != 0 {
		t.Fatalf("trace ring: enabled=%v dropped=%d; want enabled with no drops", tr.Enabled, tr.Dropped)
	}
	if matched, accepted := matchAccepted(tr.Records, truth, cps); matched != len(truth) {
		t.Errorf("session trace: %d/%d ground-truth misses covered by a stall_accepted event (%d accepted total)",
			matched, len(truth), accepted)
	}
	if _, err := client.Finalize(ctx, id); err != nil {
		t.Fatal(err)
	}
}

// busyLevel estimates the capture's stall-free signal level (the 90th
// percentile of magnitudes), used to pad a stream without creating dips.
func busyLevel(samples []float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return s[len(s)*9/10]
}
