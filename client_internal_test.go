package emprof

import (
	"math/rand"
	"testing"
	"time"
)

// TestRetryDelayFullJitter pins the backoff law: attempt n sleeps
// exactly RetryRand()·(base<<n), so with an injected source the whole
// schedule is deterministic and spans [0, base<<n).
func TestRetryDelayFullJitter(t *testing.T) {
	base := 100 * time.Millisecond
	c := &Client{RetryBaseDelay: base}

	draws := []float64{0, 0.5, 0.25, 0.999}
	i := 0
	c.RetryRand = func() float64 { d := draws[i%len(draws)]; i++; return d }

	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 0}, // draw 0.0
		{1, time.Duration(0.5 * float64(base<<1))},   // 100ms
		{2, time.Duration(0.25 * float64(base<<2))},  // 100ms
		{3, time.Duration(0.999 * float64(base<<3))}, // ~799ms
	}
	for _, tc := range cases {
		if got := c.retryDelay(tc.attempt); got != tc.want {
			t.Fatalf("retryDelay(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}

	// Replaying the same source gives the same schedule.
	i = 0
	for _, tc := range cases {
		if got := c.retryDelay(tc.attempt); got != tc.want {
			t.Fatalf("replay retryDelay(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}

	// With a real rand source every draw stays inside the full-jitter
	// envelope [0, base<<attempt) — never the fixed ceiling that would
	// re-synchronize a fleet of backed-off clients.
	rng := rand.New(rand.NewSource(7))
	c.RetryRand = rng.Float64
	for attempt := 0; attempt < 6; attempt++ {
		for k := 0; k < 200; k++ {
			d := c.retryDelay(attempt)
			if d < 0 || d >= base<<attempt {
				t.Fatalf("retryDelay(%d) = %v outside [0, %v)", attempt, d, base<<attempt)
			}
		}
	}

	// Nil RetryRand and zero base fall back to math/rand over the 100ms
	// default without panicking.
	d := (&Client{}).retryDelay(2)
	if d < 0 || d >= 400*time.Millisecond {
		t.Fatalf("default retryDelay(2) = %v outside [0, 400ms)", d)
	}
}
