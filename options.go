package emprof

import (
	"context"
	"fmt"

	"emprof/internal/core"
)

// runBlockSamples is the push granularity of Analyzer.Run's streaming
// path; cancellation is checked between blocks.
const runBlockSamples = 1 << 16

// Analyzer is the configured profiling pipeline behind the package's
// analysis API: construct one with NewAnalyzer, then Run it over
// captures. The zero value is not usable.
//
// One Analyzer may Run any number of captures, sequentially or from
// multiple goroutines (each Run builds its own pipeline state); an
// attached Observer must be safe for concurrent use in the latter case,
// or whenever WithWorkers enables the parallel path.
type Analyzer struct {
	core      *core.Analyzer
	workers   int
	streaming bool
	obs       Observer
}

// Option configures an Analyzer at construction time.
type Option func(*Analyzer)

// WithWorkers selects the parallel analysis path with the given worker
// count: the capture is sharded across a bounded pool, bit-identically to
// the sequential result. n <= 0 uses runtime.GOMAXPROCS(0); n == 1 is
// the sequential default. Ignored by the streaming path (WithStreaming),
// which is single-pass by construction.
func WithWorkers(n int) Option {
	return func(a *Analyzer) {
		if n <= 0 {
			n = 0 // auto-size
		}
		a.workers = n
	}
}

// WithObserver attaches a decision-trace observer (see the trace types:
// NewTraceJSONL, NewTraceRing, NewTraceMetrics, MultiObserver): it
// receives one event per analyzer decision. Observers never change the
// produced profile, and a nil observer keeps the pipeline on its
// original allocation-free path.
func WithObserver(o Observer) Option {
	return func(a *Analyzer) { a.obs = o }
}

// WithStreaming selects the bounded-memory incremental path: Run pushes
// the capture through a StreamAnalyzer block by block instead of holding
// intermediate buffers proportional to the capture. The result still
// matches the batch path bit-for-bit; Run additionally honours context
// cancellation between blocks.
func WithStreaming() Option {
	return func(a *Analyzer) { a.streaming = true }
}

// WithNormalized retains the normalised signal on the produced Profile
// (Profile.Normalized) for debugging and display experiments. Ignored by
// the streaming path, which never materialises the normalised series.
func WithNormalized() Option {
	return func(a *Analyzer) { a.core.KeepNormalized = true }
}

// NewAnalyzer validates the configuration and builds an analyzer.
// Without options it reproduces Analyze exactly; options select the
// parallel or streaming execution paths (every path is bit-identical in
// output) and attach observability:
//
//	a, err := emprof.NewAnalyzer(cfg,
//	        emprof.WithWorkers(8),
//	        emprof.WithObserver(emprof.NewTraceMetrics()))
//	prof, err := a.Run(ctx, capture)
//
// Configuration failures are reported as ErrBadConfig.
func NewAnalyzer(cfg Config, opts ...Option) (*Analyzer, error) {
	ca, err := core.NewAnalyzer(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrBadConfig, err)
	}
	a := &Analyzer{core: ca, workers: 1}
	for _, opt := range opts {
		opt(a)
	}
	ca.Observer = a.obs
	return a, nil
}

// Config returns the analyzer's configuration.
func (a *Analyzer) Config() Config { return a.core.Config() }

// Run profiles one capture on the path the options selected. It reports
// ErrBadCapture for captures that cannot be analysed, and honours ctx:
// a nil ctx means context.Background(), cancellation is checked up front
// on every path and between blocks on the streaming path. On the batch
// and parallel paths a capture already in flight runs to completion —
// they have no internal yield points.
func (a *Analyzer) Run(ctx context.Context, c *Capture) (*Profile, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateCapture(c); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if a.streaming {
		return a.runStreaming(ctx, c)
	}
	if a.workers != 1 {
		return a.core.ProfileParallel(c, core.ParallelOptions{Workers: a.workers}), nil
	}
	return a.core.Profile(c), nil
}

// runStreaming pushes the capture through a fresh StreamAnalyzer in
// runBlockSamples blocks, checking for cancellation between blocks.
func (a *Analyzer) runStreaming(ctx context.Context, c *Capture) (*Profile, error) {
	s, err := a.Stream(c.SampleRate, c.ClockHz)
	if err != nil {
		return nil, err
	}
	for off := 0; off < len(c.Samples); off += runBlockSamples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := off + runBlockSamples
		if end > len(c.Samples) {
			end = len(c.Samples)
		}
		for _, x := range c.Samples[off:end] {
			s.Push(x)
		}
	}
	return s.Finalize(), nil
}

// Stream returns a push-based incremental profiler carrying the
// analyzer's configuration and observer, for signals acquired at
// sampleRate from a processor clocked at clockHz — the live-acquisition
// form of Run(ctx, capture) with WithStreaming.
func (a *Analyzer) Stream(sampleRate, clockHz float64) (*StreamAnalyzer, error) {
	s, err := core.NewStreamAnalyzer(a.core.Config(), sampleRate, clockHz)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrBadConfig, err)
	}
	if a.obs != nil {
		s.SetObserver(a.obs)
	}
	return s, nil
}
