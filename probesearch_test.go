package emprof

import (
	"context"
	"math"
	"sort"
	"testing"
)

// searchScoreAt evaluates the probe-search objective at one placement by
// running the same pilot pipeline the search runs.
func searchScoreAt(t *testing.T, wl string, p ProbePosition) float64 {
	t.Helper()
	dev, err := DeviceByName("olimex")
	if err != nil {
		t.Fatal(err)
	}
	w, err := ParseWorkload(wl, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Simulate(dev, w, CaptureOptions{Seed: 1, Probe: p})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Analyze(run.Capture, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return PlacementScore(run.Capture, prof)
}

// TestSearchProbePlacementRecoversTopDecile is the ISSUE acceptance
// criterion: started a few millimetres off the sweet spot, the compass
// search must land in the top confidence decile of a reference placement
// grid.
func TestSearchProbePlacementRecoversTopDecile(t *testing.T) {
	const wl = "micro:64:4"

	// Reference 5x5 grid over the placement plane.
	var scores []float64
	for _, x := range []float64{-4, -2, 0, 2, 4} {
		for _, y := range []float64{-4, -2, 0, 2, 4} {
			scores = append(scores, searchScoreAt(t, wl, ProbePosition{XMM: x, YMM: y}))
		}
	}
	sort.Float64s(scores)
	decile := scores[(len(scores)*9)/10]

	res, err := SearchProbePlacement(context.Background(), ProbeSearchOptions{
		Device:   "olimex",
		Workload: wl,
		Start:    ProbePosition{XMM: 3, YMM: -3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < decile {
		t.Errorf("search score %.4f below grid top decile %.4f (best %+v)",
			res.Score, decile, res.Best)
	}
	if got := res.Best.OffsetMM(); got > 1.5 {
		t.Errorf("search settled %.2f mm from the sweet spot, want <= 1.5", got)
	}
	if len(res.Evals) == 0 || len(res.Evals) > 40 {
		t.Errorf("evals = %d, want within (0, 40]", len(res.Evals))
	}
	// The search is deterministic: the best score must match a direct
	// evaluation at the reported placement.
	if direct := searchScoreAt(t, wl, res.Best); math.Abs(direct-res.Score) > 1e-12 {
		t.Errorf("reported score %.6f != direct evaluation %.6f", res.Score, direct)
	}
}

// TestSearchProbePlacementValidation covers option errors.
func TestSearchProbePlacementValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := SearchProbePlacement(ctx, ProbeSearchOptions{}); err == nil {
		t.Error("empty device: want error")
	}
	if _, err := SearchProbePlacement(ctx, ProbeSearchOptions{Device: "nope"}); err == nil {
		t.Error("unknown device: want error")
	}
	if _, err := SearchProbePlacement(ctx, ProbeSearchOptions{
		Device: "olimex", Start: ProbePosition{XMM: math.NaN()},
	}); err == nil {
		t.Error("invalid start: want error")
	}
	bad := DefaultConfig()
	bad.EnterThreshold = -1
	if _, err := SearchProbePlacement(ctx, ProbeSearchOptions{
		Device: "olimex", Config: &bad,
	}); err == nil {
		t.Error("invalid config: want error")
	}
}

// TestPlacementScoreFarOff pins the properties that make PlacementScore
// usable as a search objective: it falls with displacement, and an empty
// profile scores zero rather than inheriting MeanConfidence's vacuous 1.
func TestPlacementScoreFarOff(t *testing.T) {
	dev, err := DeviceByName("olimex")
	if err != nil {
		t.Fatal(err)
	}
	w, err := ParseWorkload("micro:16:4", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Simulate(dev, w, CaptureOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 40 mm out the coupling gain is ~1e-4: the capture is essentially
	// noise and the profiler should find nothing worth scoring.
	far, err := Simulate(dev, w, CaptureOptions{Seed: 1, Probe: ProbePosition{XMM: 40}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Analyze(run.Capture, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lost, err := Analyze(far.Capture, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	refScore := PlacementScore(run.Capture, ref)
	lostScore := PlacementScore(far.Capture, lost)
	if refScore <= 0 {
		t.Errorf("reference placement score = %g, want > 0", refScore)
	}
	if lostScore >= refScore/10 {
		t.Errorf("score at 40 mm (%g) not well below reference (%g)",
			lostScore, refScore)
	}
	if PlacementScore(far.Capture, &Profile{}) != 0 {
		t.Error("empty profile must score 0")
	}
}
