package emprof

import (
	"context"
	"errors"
	"testing"
)

// sweepEqual compares the observable outcome of two sweep results.
func sweepEqual(a, b SweepResult) bool {
	if (a.Err == nil) != (b.Err == nil) || (a.Profile == nil) != (b.Profile == nil) {
		return false
	}
	if a.Profile != nil {
		if a.Profile.Misses != b.Profile.Misses ||
			a.Profile.StallCycles != b.Profile.StallCycles ||
			a.Profile.Quality != b.Profile.Quality {
			return false
		}
	}
	return a.TrueMisses == b.TrueMisses && a.TrueStallCycles == b.TrueStallCycles &&
		a.TrueCycles == b.TrueCycles
}

func TestRunSweepDeterministicAcrossWorkers(t *testing.T) {
	grid := SweepGrid{
		Devices:   []string{"olimex", "samsung"},
		Workloads: []string{"micro:32:8"},
		Seeds:     []uint64{1, 2},
	}
	jobs := grid.Jobs()
	if len(jobs) != 4 {
		t.Fatalf("grid expanded to %d jobs, want 4", len(jobs))
	}
	run := func(workers int) []SweepResult {
		res, err := RunSweep(context.Background(), jobs, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, workers := range []int{2, 4} {
		got := run(workers)
		for i := range want {
			if !sweepEqual(got[i], want[i]) {
				t.Fatalf("workers=%d job %d diverged from serial run", workers, i)
			}
		}
	}
	for i, r := range want {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if r.Index != i || r.Job != jobs[i] {
			t.Fatalf("job %d result mis-ordered: index %d", i, r.Index)
		}
		if r.Profile == nil || r.Profile.Misses == 0 || r.TrueMisses == 0 {
			t.Fatalf("job %d produced no misses: %+v", i, r)
		}
	}
}

func TestRunSweepIsolatesJobErrors(t *testing.T) {
	jobs := []SweepJob{
		{Device: "olimex", Workload: "micro:16:8", Seed: 1},
		{Device: "pixel", Workload: "micro:16:8", Seed: 1},  // unknown device
		{Device: "olimex", Workload: "quake3", Seed: 1},     // unknown workload
		{Device: "olimex", Workload: "micro:16:8", Seed: 2}, // healthy again
	}
	res, err := RunSweep(context.Background(), jobs, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatalf("per-job failures must not abort the sweep: %v", err)
	}
	if res[0].Err != nil || res[3].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", res[0].Err, res[3].Err)
	}
	if res[1].Err == nil || res[2].Err == nil {
		t.Fatalf("bad jobs did not error: %v / %v", res[1].Err, res[2].Err)
	}
	if res[1].Profile != nil || res[2].Profile != nil {
		t.Fatal("failed jobs carry profiles")
	}
}

func TestRunSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before dispatch: every job must be skipped
	grid := SweepGrid{Workloads: []string{"micro:16:8"}}
	res, err := RunSweep(ctx, grid.Jobs(), SweepOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error = %v, want context.Canceled", err)
	}
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d error = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestRunSweepFaultRemixing(t *testing.T) {
	spec := FaultSpec{DropoutRate: 0.02, BurstRate: 0.005, NaNRate: 0.001, Seed: 1}
	grid := SweepGrid{
		Devices:   []string{"olimex"},
		Workloads: []string{"micro:32:8"},
		Seeds:     []uint64{1, 2},
		Faults:    spec,
	}
	res, err := RunSweep(context.Background(), grid.Jobs(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.FaultReport == nil || len(r.FaultReport.Events) == 0 {
			t.Fatalf("job %d has no fault report", i)
		}
	}
	// Different seeds must see different impairment patterns (remixed
	// seeds), deterministically: rerunning reproduces them exactly.
	if res[0].FaultReport.Events[0] == res[1].FaultReport.Events[0] {
		t.Fatal("fault patterns identical across seeds; remixing broken")
	}
	again, err := RunSweep(context.Background(), grid.Jobs(), SweepOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].FaultReport.String() != again[i].FaultReport.String() {
			t.Fatalf("job %d fault report not reproducible", i)
		}
	}
}

func TestRunSweepValidatesConfig(t *testing.T) {
	bad := DefaultConfig()
	bad.EnterThreshold = 2
	_, err := RunSweep(context.Background(), SweepGrid{}.Jobs(), SweepOptions{Config: &bad})
	if err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSweepGridDefaults(t *testing.T) {
	jobs := SweepGrid{}.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("default grid has %d jobs, want one per physical device", len(jobs))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		seen[j.Device] = true
		if j.Workload != "micro:256:8" || j.Seed != 1 {
			t.Fatalf("unexpected default job %+v", j)
		}
	}
	if !seen["alcatel"] || !seen["samsung"] || !seen["olimex"] {
		t.Fatalf("default devices %v", seen)
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	for _, spec := range []string{"micro", "micro:a:b", "spec", "spec:quake3", "file", "nope"} {
		if _, err := ParseWorkload(spec, 1, 1); err == nil {
			t.Errorf("ParseWorkload(%q) accepted", spec)
		}
	}
	if _, err := ParseWorkload("micro:16:8", 1, 1); err != nil {
		t.Errorf("micro spec rejected: %v", err)
	}
	if w, err := ParseWorkload("boot", 0.05, 7); err != nil || w == nil {
		t.Errorf("boot spec rejected: %v", err)
	}
}
