package emprof

import (
	"context"
	"fmt"
	"math"
)

// This file implements automated probe placement in the spirit of
// SCNIFFER (PAPERS.md): instead of a human sliding the probe until the
// profile looks right, a deterministic compass (pattern) search walks the
// placement plane, profiling a short pilot workload at each candidate and
// climbing toward the placement that profiles best. The objective mirrors
// SCNIFFER's: received signal strength — which falls off smoothly with
// displacement and so supplies the gradient the climb follows — scaled by
// how trustworthy the resulting profile is (mean stall confidence and
// usable-signal fraction), so a placement that is loud but profiles badly
// cannot win, and a dead placement (no stalls at all) scores zero.

// ProbeSearchOptions configures SearchProbePlacement. Device, Workload
// and Seed describe the pilot acquisition repeated at every candidate
// placement (same seed every time, so two placements differ only in
// probe position).
type ProbeSearchOptions struct {
	// Device is a paper device name (see DeviceByName).
	Device string
	// Workload uses the emsim specification syntax (see ParseWorkload);
	// empty means the paper microbenchmark "micro:128:8". Keep it short —
	// it is simulated once per candidate placement.
	Workload string
	// ScaleM is the spec/boot instruction budget in millions (0 = 1).
	ScaleM float64
	// Seed drives every pilot capture (default 1).
	Seed uint64
	// BandwidthHz overrides the device's default measurement bandwidth.
	BandwidthHz float64
	// Start is the initial placement (the search recovers from starts
	// several millimetres off the sweet spot).
	Start ProbePosition
	// StepMM is the initial compass step (default 2 mm) and MinStepMM the
	// step at which the search stops refining (default 0.25 mm).
	StepMM    float64
	MinStepMM float64
	// MaxEvals bounds the number of pilot captures (default 40).
	MaxEvals int
	// Config overrides the profiler configuration (nil = DefaultConfig).
	Config *Config
}

// ProbeSearchEval is one evaluated placement.
type ProbeSearchEval struct {
	Position ProbePosition
	Score    float64
}

// ProbeSearchResult is the outcome of a placement search.
type ProbeSearchResult struct {
	// Best is the highest-scoring placement found and Score its
	// objective value.
	Best  ProbePosition
	Score float64
	// Evals lists every evaluated placement in evaluation order (the
	// search path, for display and regression tests).
	Evals []ProbeSearchEval
}

// PlacementScore is the placement objective: the capture's mean received
// magnitude — the signal-strength term SCNIFFER climbs on, strictly
// monotone in the coupling gain — scaled by the profile's mean stall
// confidence and usable-signal fraction. Profile-only statistics cannot
// serve here: off the sweet spot the blurred envelope fragments into many
// moderate-confidence spurious dips, so summed confidence rises with
// displacement and mean confidence flattens; amplitude restores the
// gradient while the confidence and usability terms veto placements that
// are loud but profile badly. An empty profile scores zero (not
// MeanConfidence's vacuous 1), so a dead placement can never look optimal.
func PlacementScore(c *Capture, p *Profile) float64 {
	if len(c.Samples) == 0 || len(p.Stalls) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range c.Samples {
		mean += v
	}
	mean /= float64(len(c.Samples))
	return mean * p.MeanConfidence() * p.Quality.UsableFraction()
}

// SearchProbePlacement hill-climbs probe placement to maximise profile
// confidence: a compass search that tries the four axis neighbours of the
// current placement at the current step, moves to the best improvement,
// and halves the step when no neighbour improves. It is deterministic for
// fixed options. The orientation of Start is kept throughout — the search
// walks the lateral plane only.
func SearchProbePlacement(ctx context.Context, opts ProbeSearchOptions) (*ProbeSearchResult, error) {
	if opts.Device == "" {
		return nil, fmt.Errorf("emprof: probe search needs a device")
	}
	dev, err := DeviceByName(opts.Device)
	if err != nil {
		return nil, err
	}
	wlSpec := opts.Workload
	if wlSpec == "" {
		wlSpec = "micro:128:8"
	}
	scale := opts.ScaleM
	if scale <= 0 {
		scale = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	step := opts.StepMM
	if step <= 0 {
		step = 2
	}
	minStep := opts.MinStepMM
	if minStep <= 0 {
		minStep = 0.25
	}
	maxEvals := opts.MaxEvals
	if maxEvals <= 0 {
		maxEvals = 40
	}
	cfg := DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Start.Validate(); err != nil {
		return nil, err
	}

	res := &ProbeSearchResult{}
	// cache keyed on the (finite-precision) lateral coordinates so the
	// compass never pays for revisiting a placement.
	cache := map[[2]int64]float64{}
	evaluate := func(p ProbePosition) (float64, error) {
		key := [2]int64{int64(math.Round(p.XMM * 1e6)), int64(math.Round(p.YMM * 1e6))}
		if s, ok := cache[key]; ok {
			return s, nil
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		wl, err := ParseWorkload(wlSpec, scale, seed)
		if err != nil {
			return 0, err
		}
		run, err := Simulate(dev, wl, CaptureOptions{
			Seed:        seed,
			BandwidthHz: opts.BandwidthHz,
			Probe:       p,
		})
		if err != nil {
			return 0, err
		}
		prof, err := Analyze(run.Capture, cfg)
		if err != nil {
			return 0, err
		}
		s := PlacementScore(run.Capture, prof)
		cache[key] = s
		res.Evals = append(res.Evals, ProbeSearchEval{Position: p, Score: s})
		return s, nil
	}

	cur := opts.Start
	best, err := evaluate(cur)
	if err != nil {
		return nil, err
	}
	for step >= minStep && len(res.Evals) < maxEvals {
		improved := false
		bestN, bestNScore := cur, best
		for _, d := range [][2]float64{{step, 0}, {-step, 0}, {0, step}, {0, -step}} {
			if len(res.Evals) >= maxEvals {
				break
			}
			cand := cur
			cand.XMM += d[0]
			cand.YMM += d[1]
			if cand.Validate() != nil {
				continue
			}
			s, err := evaluate(cand)
			if err != nil {
				return nil, err
			}
			if s > bestNScore {
				bestN, bestNScore = cand, s
				improved = true
			}
		}
		if improved {
			cur, best = bestN, bestNScore
		} else {
			step /= 2
		}
	}
	res.Best, res.Score = cur, best
	return res, nil
}
