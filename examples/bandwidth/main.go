// Bandwidth reproduces the paper's Fig. 12 study as a library example:
// how much measurement bandwidth does EMPROF need? The received signal's
// sample period is 1/bandwidth, so narrow-band captures cannot resolve
// short stalls — at 20 MHz the fast Alcatel phone only shows its very
// longest stalls, while statistics stabilise from about 6% of the clock
// frequency upward.
package main

import (
	"fmt"
	"log"

	"emprof"
)

func main() {
	devices := []emprof.Device{emprof.DeviceAlcatel(), emprof.DeviceOlimex()}
	bandwidths := []float64{20e6, 40e6, 60e6, 80e6, 160e6}

	fmt.Printf("%-10s", "BW (MHz)")
	for _, d := range devices {
		fmt.Printf(" | %-10s stalls  avg-cyc", d.Name)
	}
	fmt.Println()

	for _, bw := range bandwidths {
		fmt.Printf("%-10.0f", bw/1e6)
		for _, dev := range devices {
			wl, err := emprof.SPECWorkload("mcf", 1.0)
			if err != nil {
				log.Fatal(err)
			}
			run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: 1, BandwidthHz: bw})
			if err != nil {
				log.Fatal(err)
			}
			prof, err := emprof.Analyze(run.Capture, emprof.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" | %-10s %6d  %7.0f", "", len(prof.Stalls), prof.AvgStallCycles())
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("at 20 MHz the Alcatel detects only very long stalls (high average")
	fmt.Println("latency, low count); both devices stabilise by 60-80 MHz — about 6%")
	fmt.Println("of the processor clock, as the paper reports.")
}
