// Bootprofile demonstrates EMPROF's signature capability (paper Fig. 13):
// profiling a device's boot sequence, where no conventional profiler can
// run — the performance counters are not yet initialised and there is
// nowhere to store profiling data. The probe needs nothing from the
// target; it just listens from power-on.
package main

import (
	"fmt"
	"log"
	"strings"

	"emprof"
)

func main() {
	dev := emprof.DeviceOlimex()

	for boot := 0; boot < 2; boot++ {
		wl := emprof.BootWorkload(2.0, uint64(boot)*31+1)
		run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: uint64(boot) + 1})
		if err != nil {
			log.Fatal(err)
		}
		prof, err := emprof.Analyze(run.Capture, emprof.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}

		binS := run.Capture.Duration() / 50
		series := prof.MissRateSeries(binS)
		peak := 0
		for _, v := range series {
			if v > peak {
				peak = v
			}
		}
		fmt.Printf("boot %d: %.2f ms, %d LLC-miss stalls, %.2f%% of time stalled\n",
			boot+1, run.Capture.Duration()*1e3, len(prof.Stalls), 100*prof.StallFraction())
		fmt.Printf("  miss rate over time (bins of %.0f µs, peak %d):\n", binS*1e6, peak)
		for i, v := range series {
			bar := strings.Repeat("#", v*50/max(peak, 1))
			fmt.Printf("  %6.2f ms |%s\n", float64(i)*binS*1e3, bar)
		}
		fmt.Println()
	}
	fmt.Println("the early loader/decompress phases dominate the miss rate — a")
	fmt.Println("memory-locality optimisation there would speed up boot (paper §VI-C).")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
