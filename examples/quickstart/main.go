// Quickstart: run the paper's engineered microbenchmark on the Olimex
// IoT-board model, capture its EM emanations, and let EMPROF count the
// LLC misses and account their stall time — all with zero code on, or
// contact with, the "profiled" system.
package main

import (
	"fmt"
	"log"

	"emprof"
)

func main() {
	const tm, cm = 256, 8 // engineer 256 misses in groups of 8

	dev := emprof.DeviceOlimex()
	workload, err := emprof.Microbenchmark(tm, cm)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate the device executing the workload while a near-field probe
	// records its emanations at the default 40 MHz bandwidth.
	run, err := emprof.Simulate(dev, workload, emprof.CaptureOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s (%s, %.3f GHz, %d KB LLC)\n",
		dev.Name, dev.CoreName, dev.CPU.ClockHz/1e9, dev.Mem.LLC.SizeBytes/1024)
	fmt.Printf("capture: %d samples at %.1f MHz (%.2f ms of execution)\n",
		len(run.Capture.Samples), run.Capture.SampleRate/1e6, run.Capture.Duration()*1e3)

	// Profile the whole capture.
	prof, err := emprof.Analyze(run.Capture, emprof.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEMPROF report:\n")
	fmt.Printf("  LLC-miss stalls detected:   %d (engineered: %d)\n", len(prof.Stalls), tm)
	fmt.Printf("  refresh-coincident stalls:  %d\n", prof.RefreshStalls)
	fmt.Printf("  total stall time:           %.0f cycles (%.2f%% of execution)\n",
		prof.StallCycles, 100*prof.StallFraction())
	fmt.Printf("  average stall:              %.0f cycles (%.0f ns)\n",
		prof.AvgStallCycles(), prof.AvgStallCycles()/dev.CPU.ClockHz*1e9)

	// Compare against the simulator's ground truth, which a real probe
	// never needs but a reproduction can check.
	fmt.Printf("\nground truth: %d LLC misses, %d fully-stalled cycles\n",
		len(run.Truth.Misses), run.Truth.FullStallCycles)
	fmt.Printf("count accuracy vs engineered TM: %.2f%%\n", prof.CountAccuracy(tm).Percent)
}
