// Streaming profiles a long capture incrementally: samples are pushed as
// they "arrive" from the receiver and stalls are delivered live, in
// bounded memory — the acquisition mode the paper needed for SPEC runs
// that exceeded the spectrum analyzer's record length (§VI).
package main

import (
	"fmt"
	"log"

	"emprof"
)

func main() {
	dev := emprof.DeviceOlimex()
	wl, err := emprof.SPECWorkload("parser", 2.0)
	if err != nil {
		log.Fatal(err)
	}
	run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	sa, err := emprof.NewStreamAnalyzer(emprof.DefaultConfig(),
		run.Capture.SampleRate, run.Capture.ClockHz)
	if err != nil {
		log.Fatal(err)
	}
	delivered := 0
	sa.OnStall = func(s emprof.Stall) {
		delivered++
		if delivered <= 5 {
			kind := "miss"
			if s.Refresh {
				kind = "refresh"
			}
			fmt.Printf("  live event %d: t=%8.1f µs, %4.0f cycles, %s\n",
				delivered, s.StartS*1e6, s.Cycles, kind)
		}
	}

	// Feed the capture sample by sample, as a receiver would.
	for _, x := range run.Capture.Samples {
		sa.Push(x)
	}
	prof := sa.Finalize()

	// Cross-check against the one-shot batch analysis.
	batch, err := emprof.Analyze(run.Capture, emprof.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreaming: %d stalls (%d delivered live), %.2f%% stalled\n",
		len(prof.Stalls), delivered, 100*prof.StallFraction())
	fmt.Printf("batch:     %d stalls, %.2f%% stalled — identical pipeline, bounded memory\n",
		len(batch.Stalls), 100*batch.StallFraction())
}
