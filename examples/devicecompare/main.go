// Devicecompare profiles the same workloads on all three of the paper's
// device models (Table I / Table IV): the Alcatel phone's larger LLC and
// faster memory, the Samsung phone's prefetcher, and the Olimex board's
// fast clock against slow DRAM each leave a distinct fingerprint in the
// stall statistics — visible entirely from the outside.
package main

import (
	"fmt"
	"log"

	"emprof"
)

func main() {
	devices := emprof.Devices()
	workloads := []string{"mcf", "bzip2", "equake", "crafty", "vpr"}

	fmt.Printf("%-8s", "bench")
	for _, d := range devices {
		fmt.Printf(" | %8s %7s %7s", d.Name, "stalls", "stall%")
	}
	fmt.Println()

	for _, name := range workloads {
		fmt.Printf("%-8s", name)
		for _, dev := range devices {
			wl, err := emprof.SPECWorkload(name, 1.0)
			if err != nil {
				log.Fatal(err)
			}
			run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			prof, err := emprof.Analyze(run.Capture, emprof.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" | %8s %7d %6.2f%%", "", len(prof.Stalls), 100*prof.StallFraction())
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("expected shapes (paper Table IV): the Olimex board stalls the most")
	fmt.Println("(fast clock, slow DRAM, no prefetcher); the Samsung prefetcher tames")
	fmt.Println("the streaming benchmarks (bzip2, equake); the Alcatel's low-latency")
	fmt.Println("LPDDR3 keeps its stall percentages lowest.")
}
