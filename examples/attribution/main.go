// Attribution combines EMPROF with Spectral Profiling-style code
// attribution (paper §VI-D, Fig. 14, Table V): per-function spectral
// signatures are trained on one labelled run of SPEC's parser, a second
// run's signal is segmented by nearest-signature matching, and the stalls
// EMPROF finds are attributed to the functions they occurred in.
package main

import (
	"fmt"
	"log"

	"emprof/internal/experiments"
)

func main() {
	res, err := experiments.RunAttribution(experiments.Options{Scale: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("trained signatures:")
	for _, s := range res.Model.Signatures {
		fmt.Printf("  region %-2d %-16s (%d training frames)\n", s.Region, s.Name, s.Frames)
	}
	fmt.Printf("\nautomated spectral segmentation: %d segments, %.1f%% frame accuracy\n",
		len(res.Segmentation.Segments), 100*res.Segmentation.FrameAccuracy)

	fmt.Println("\nper-function EMPROF report (manual transition marks, as in Table V):")
	fmt.Printf("%-16s %10s %20s %14s %16s\n",
		"function", "misses", "miss rate (/Mcyc)", "stall (%)", "avg lat (cyc)")
	for _, r := range res.Reports {
		fmt.Printf("%-16s %10d %20.2f %14.2f %16.2f\n",
			r.Name, r.Misses, r.MissRatePerMcycle, r.StallPct, r.AvgMissLatency)
	}
	fmt.Println("\nbatch_process is the optimisation target: most time, most misses,")
	fmt.Println("highest stall share — the paper's Table V conclusion.")
}
