package emprof

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// apiTestCapture simulates a small microbenchmark capture for the
// options-API tests.
func apiTestCapture(t *testing.T) *Capture {
	t.Helper()
	w, err := Microbenchmark(96, 8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Simulate(DeviceOlimex(), w, CaptureOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return run.Capture
}

// TestNewAnalyzerMatchesDeprecatedAPI pins the unification contract: the
// deprecated entry points and every NewAnalyzer execution path produce
// bit-identical profiles.
func TestNewAnalyzerMatchesDeprecatedAPI(t *testing.T) {
	c := apiTestCapture(t)
	cfg := DefaultConfig()
	want, err := Analyze(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name string
		opts []Option
	}{
		{"default", nil},
		{"parallel", []Option{WithWorkers(4)}},
		{"parallel-auto", []Option{WithWorkers(0)}},
		{"streaming", []Option{WithStreaming()}},
	}
	for _, tc := range cases {
		a, err := NewAnalyzer(cfg, tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Run(ctx, c)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: profile differs from Analyze", tc.name)
		}
	}
	if ps, err := AnalyzeParallel(c, cfg, 4); err != nil || !reflect.DeepEqual(ps, want) {
		t.Errorf("AnalyzeParallel differs (err=%v)", err)
	}
	if ss, err := AnalyzeStream(c, cfg); err != nil || !reflect.DeepEqual(ss, want) {
		t.Errorf("AnalyzeStream differs (err=%v)", err)
	}
}

// TestObserverGoldenEquivalence is the golden satellite test: attaching
// any observer (JSONL, ring, metrics, or all three) leaves the Profile
// bit-identical to the nil-observer run on the batch, streaming and
// parallel paths.
func TestObserverGoldenEquivalence(t *testing.T) {
	c := apiTestCapture(t)
	cfg := DefaultConfig()
	want, err := Analyze(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	paths := []struct {
		name string
		opts []Option
	}{
		{"batch", nil},
		{"parallel", []Option{WithWorkers(4)}},
		{"stream", []Option{WithStreaming()}},
	}
	sinks := []struct {
		name string
		mk   func() Observer
	}{
		{"jsonl", func() Observer { return NewTraceJSONL(&bytes.Buffer{}) }},
		{"ring", func() Observer { return NewTraceRing(1 << 14) }},
		{"metrics", func() Observer { return NewTraceMetrics() }},
		{"all", func() Observer {
			return MultiObserver(NewTraceJSONL(&bytes.Buffer{}), NewTraceRing(1<<14), NewTraceMetrics())
		}},
	}
	for _, p := range paths {
		for _, s := range sinks {
			a, err := NewAnalyzer(cfg, append([]Option{WithObserver(s.mk())}, p.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.Run(context.Background(), c)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.name, s.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: observer changed the profile", p.name, s.name)
			}
		}
	}
}

// TestRunTraceJSONL checks the JSONL sink end to end through the public
// API: the event stream is well-formed and reconciles with the profile.
func TestRunTraceJSONL(t *testing.T) {
	c := apiTestCapture(t)
	var buf bytes.Buffer
	rec := NewTraceJSONL(&buf)
	a, err := NewAnalyzer(DefaultConfig(), WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := a.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r TraceRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if r.Type == "stall_accepted" {
			accepted++
		}
	}
	if accepted != len(prof.Stalls) {
		t.Errorf("trace has %d stall_accepted events, profile has %d stalls", accepted, len(prof.Stalls))
	}
	if accepted == 0 {
		t.Error("no stalls traced on a miss-heavy microbenchmark")
	}
}

func TestRunValidatesCapture(t *testing.T) {
	a, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := a.Run(ctx, nil); !errors.Is(err, ErrBadCapture) {
		t.Errorf("nil capture: got %v, want ErrBadCapture", err)
	}
	if _, err := a.Run(ctx, &Capture{Samples: []float64{1, 2}, ClockHz: 1e9}); !errors.Is(err, ErrBadCapture) {
		t.Errorf("zero sample rate: got %v, want ErrBadCapture", err)
	}
	if _, err := a.Run(ctx, &Capture{Samples: []float64{1, 2}, SampleRate: 40e6}); !errors.Is(err, ErrBadCapture) {
		t.Errorf("zero clock: got %v, want ErrBadCapture", err)
	}
	// An empty capture is analysable: it profiles to an empty Profile.
	if p, err := a.Run(ctx, &Capture{}); err != nil || len(p.Stalls) != 0 {
		t.Errorf("empty capture: profile %v, err %v", p, err)
	}
}

func TestNewAnalyzerBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnterThreshold = 2
	if _, err := NewAnalyzer(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("got %v, want ErrBadConfig", err)
	}
	if _, err := Analyze(&Capture{}, cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("deprecated wrapper: got %v, want ErrBadConfig", err)
	}
}

func TestRunHonoursContext(t *testing.T) {
	c := apiTestCapture(t)
	for _, opts := range [][]Option{nil, {WithStreaming()}, {WithWorkers(4)}} {
		a, err := NewAnalyzer(DefaultConfig(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := a.Run(ctx, c); !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled ctx: got %v, want context.Canceled", err)
		}
		// A nil context means Background.
		if _, err := a.Run(nil, c); err != nil {
			t.Errorf("nil ctx: %v", err)
		}
	}
}

func TestAPIErrorSentinels(t *testing.T) {
	notFound := &APIError{StatusCode: 404, Message: "unknown session"}
	if !errors.Is(notFound, ErrSessionNotFound) {
		t.Error("404 APIError should match ErrSessionNotFound")
	}
	if errors.Is(notFound, ErrBadCapture) {
		t.Error("404 APIError must not match ErrBadCapture")
	}
	bad := &APIError{StatusCode: 400, Message: "bad metadata"}
	if !errors.Is(bad, ErrBadCapture) {
		t.Error("400 APIError should match ErrBadCapture")
	}
	var ae *APIError
	if !errors.As(notFound, &ae) || ae.StatusCode != 404 {
		t.Error("errors.As should recover the *APIError")
	}
}

// TestAnalyzerStreamWithObserver covers the push-based Stream accessor:
// the observer attached at construction rides along.
func TestAnalyzerStreamWithObserver(t *testing.T) {
	c := apiTestCapture(t)
	m := NewTraceMetrics()
	a, err := NewAnalyzer(DefaultConfig(), WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Stream(c.SampleRate, c.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range c.Samples {
		s.Push(x)
	}
	p := s.Finalize()
	if got := int(m.Snapshot().StallsAccepted); got != len(p.Stalls) {
		t.Errorf("observer saw %d accepted stalls, profile has %d", got, len(p.Stalls))
	}
}
