package emprof

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"emprof/internal/service"
)

// SessionInfo is the service's list-endpoint view of one live profiling
// session.
type SessionInfo = service.SessionInfo

// SessionSnapshot is a live profile snapshot from the service: the causal
// profile so far, ingest progress, and a per-stall confidence histogram.
type SessionSnapshot = service.Snapshot

// SessionSpec describes a profiling session to open on an emprofd
// daemon.
type SessionSpec struct {
	// SampleRate and ClockHz are the acquisition metadata of the signal
	// about to be streamed (required; usually Capture.SampleRate and
	// Capture.ClockHz).
	SampleRate float64
	ClockHz    float64
	// Device optionally labels the profiled target.
	Device string
	// Config optionally overrides the profiler configuration; nil means
	// DefaultConfig.
	Config *Config
}

// Client talks to an emprofd profiling daemon (cmd/emprofd) or a fleet
// router (emprofd -router). The zero value is not usable; construct with
// NewClient.
//
// Transient failures are retried with full-jitter exponential backoff
// (each sleep is uniform in [0, base<<attempt], so a fleet of clients
// released by one shard mark-down does not retry in lockstep). What is
// retried depends on the request:
//
//	retryAll          network errors and 429/502/503/504 — GETs, session
//	                  creation (a lost response at worst leaks a session
//	                  for the idle TTL to collect), finalize, and
//	                  offset-tagged pushes (idempotent by construction).
//	retryBackpressure 429/502/503 response codes only — plain pushes.
//	                  The service and router guarantee each of these is
//	                  sent before ingesting anything (registry full,
//	                  byte budget, shutting down, session pinned for
//	                  hand-off, router shard marked down), so the retry
//	                  can never double-count samples. Network errors and
//	                  504 — the router's answer when a shard connection
//	                  failed mid-request — are NOT retried here: the
//	                  body may have partly landed and an untagged retry
//	                  cannot know how much.
//
// StreamCapture tags every push with its stream offset
// (service.HeaderOffset), making pushes idempotent server-side — the
// daemon skips whatever prefix of a retried body it already decoded —
// so mid-capture uploads survive router hand-offs and dropped responses
// without loss or double counting.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:7979".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts per request (default 4).
	MaxRetries int
	// RetryBaseDelay scales the backoff: attempt n sleeps uniform in
	// [0, RetryBaseDelay<<n] (default 100ms base).
	RetryBaseDelay time.Duration
	// RetryRand, when set, supplies the jitter draws in [0, 1) — tests
	// inject a deterministic source. Nil means math/rand.
	RetryRand func() float64
	// ChunkSamples is the number of samples per upload request in
	// StreamCapture (default 65536, i.e. 512 KiB bodies).
	ChunkSamples int
	// UserAgent, when non-empty, is sent as the User-Agent header on
	// every request (default: Go's http package default).
	UserAgent string
}

// ClientOption configures a Client at construction; see WithHTTPClient,
// WithRetryPolicy and WithUserAgent. The Client's exported fields remain
// settable directly — options are the same knobs in composable form.
type ClientOption func(*Client)

// WithHTTPClient makes the client issue requests through hc instead of
// the package's shared pooled transport.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.HTTPClient = hc }
}

// WithRetryPolicy bounds retries at maxRetries attempts with full-jitter
// exponential backoff from baseDelay (attempt n sleeps uniform in
// [0, baseDelay<<n]). Non-positive values keep the defaults (4 retries,
// 100ms base).
func WithRetryPolicy(maxRetries int, baseDelay time.Duration) ClientOption {
	return func(c *Client) {
		c.MaxRetries = maxRetries
		c.RetryBaseDelay = baseDelay
	}
}

// WithUserAgent sets the User-Agent header sent with every request.
func WithUserAgent(ua string) ClientOption {
	return func(c *Client) { c.UserAgent = ua }
}

// NewClient returns a client for the daemon (or fleet router) at
// baseURL, configured by the given options.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{BaseURL: baseURL}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// defaultHTTPClient backs every Client that did not bring its own. The
// stock transport flushes request bodies through a 4 KiB write buffer,
// which turns each streamed push (hundreds of kilobytes of samples)
// into dozens of write syscalls; the enlarged buffers move a full chunk
// per syscall. Shared package-wide so idle connections pool across
// Client values, as they did with http.DefaultClient.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        100,
		MaxIdleConnsPerHost: 32,
		IdleConnTimeout:     90 * time.Second,
		WriteBufferSize:     256 << 10,
		ReadBufferSize:      256 << 10,
	},
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

func (c *Client) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 4
}

// retryDelay draws the full-jitter backoff sleep for one attempt:
// uniform in [0, base<<attempt]. Decorrelated sleeps are what keep a
// fleet of clients from hammering a recovering shard in synchronized
// waves after a mark-down releases them all at once.
func (c *Client) retryDelay(attempt int) time.Duration {
	d := c.RetryBaseDelay
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	r := c.RetryRand
	if r == nil {
		r = rand.Float64
	}
	return time.Duration(r() * float64(d<<attempt))
}

// retryMode selects which failures a request may be retried on; see the
// Client doc comment for the full table.
type retryMode int

const (
	// retryAll retries network errors and every transient status; for
	// requests that are idempotent (GETs, create, offset-tagged pushes).
	retryAll retryMode = iota
	// retryBackpressure retries only statuses the service guarantees to
	// send before ingesting anything: 429 (full/budget) and 502/503 (a
	// router shard marked down — answered before any byte is forwarded
	// — or a session pinned mid-hand-off). 504 (shard connection failed
	// mid-request: partial ingest possible) is excluded.
	retryBackpressure
)

// transientStatus reports whether an HTTP status indicates a failure
// worth retrying.
func transientStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backpressureStatus reports the statuses sent strictly before ingest.
func backpressureStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable:
		return true
	}
	return false
}

// do issues one request with retry/backoff, decoding a JSON response into
// out when it is non-nil. body, when non-nil, is replayed on each retry;
// hdr, when non-nil, is added to every attempt.
func (c *Client) do(ctx context.Context, mode retryMode, method, path, contentType string, hdr http.Header, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt <= c.maxRetries(); attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.retryDelay(attempt - 1)):
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if c.UserAgent != "" {
			req.Header.Set("User-Agent", c.UserAgent)
		}
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			lastErr = err
			if mode == retryAll {
				continue
			}
			// Backpressure mode cannot retry a network error: without an
			// offset tag there is no telling how much of the body landed.
			return err
		}
		bp := respBufPool.Get().(*[]byte)
		data, rerr := readBodyInto(bp, resp.Body, resp.ContentLength)
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			var derr error
			switch {
			case rerr != nil:
				derr = rerr
			case out == nil:
			default:
				// Types with a hand-rolled codec (SessionSnapshot, Profile)
				// decode directly: their fast paths parse the service's
				// compact wire shape and fall back to the stdlib for
				// anything else, so skipping encoding/json's validation
				// pre-scan is safe. Both decoders copy everything they
				// keep, so the read buffer can be recycled immediately.
				if u, ok := out.(json.Unmarshaler); ok {
					derr = u.UnmarshalJSON(data)
				} else {
					derr = json.Unmarshal(data, out)
				}
			}
			respBufPool.Put(bp)
			return derr
		}
		// A 404 without the service's JSON error body means the route is
		// absent from the daemon's mux (an older daemon that predates the
		// endpoint); APIError.Is surfaces it as ErrUnsupportedEndpoint
		// rather than ErrSessionNotFound.
		var ae apiError
		_ = json.Unmarshal(data, &ae)
		respBufPool.Put(bp)
		lastErr = &APIError{StatusCode: resp.StatusCode, Message: ae.Error}
		retryable := transientStatus(resp.StatusCode)
		if mode == retryBackpressure {
			retryable = backpressureStatus(resp.StatusCode)
		}
		if !retryable {
			return lastErr
		}
	}
	return fmt.Errorf("%w: %w", ErrRetriesExhausted, lastErr)
}

// maxResponseBody bounds how much of a response the client will buffer.
const maxResponseBody = 64 << 20

// respBufPool recycles response read buffers. Profile snapshots run to
// hundreds of kilobytes and are fetched repeatedly while streaming;
// allocating a fresh buffer per response made the GC a measurable share
// of ingest throughput. Buffers go back to the pool inside do() once the
// decoded value (which copies everything it keeps) has been produced.
var respBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 64<<10); return &b },
}

// readBodyInto drains a response body into bp's buffer, growing it as
// needed and sizing it up front from Content-Length when the server
// declared one (the service sets it on profile responses).
func readBodyInto(bp *[]byte, body io.Reader, contentLength int64) ([]byte, error) {
	buf := (*bp)[:0]
	if n := contentLength; n > 0 && n <= maxResponseBody {
		if int64(cap(buf)) < n {
			buf = make([]byte, n)
		} else {
			buf = buf[:n]
		}
		*bp = buf
		if _, err := io.ReadFull(body, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	lr := io.LimitReader(body, maxResponseBody)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := lr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		*bp = buf
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// apiError mirrors the service's error body.
type apiError struct {
	Error string `json:"error"`
}

// CreateSession opens a profiling session on the daemon and returns its
// ID.
func (c *Client) CreateSession(ctx context.Context, spec SessionSpec) (string, error) {
	req := service.CreateRequest{
		SampleRate: spec.SampleRate,
		ClockHz:    spec.ClockHz,
		Device:     spec.Device,
		Config:     spec.Config,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	var resp service.CreateResponse
	if err := c.do(ctx, retryAll, http.MethodPost, "/v1/sessions", "application/json", nil, body, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// PushSamples uploads one block of magnitude samples to a session, in the
// raw little-endian float64 wire format. Blocks arrive in call order;
// concurrent pushes to one session are serialised by the daemon but land
// in unspecified order, so keep one uploader per session. Retries follow
// retryBackpressure (see the Client doc comment); callers that track
// their stream position should prefer PushSamplesAt, whose retries also
// survive network errors.
func (c *Client) PushSamples(ctx context.Context, id string, samples []float64) error {
	bp, body := encodeSamples(samples)
	err := c.do(ctx, retryBackpressure, http.MethodPost,
		"/v1/sessions/"+id+"/samples", service.ContentTypeRaw, nil, body, nil)
	if err == nil {
		recycleEncBuf(bp)
	}
	return err
}

// PushSamplesAt uploads one block whose first sample is at session
// stream index offset (the total number of samples pushed to the
// session before this block, across all callers). The offset tag makes
// the push idempotent: if a previous attempt partially landed — or
// landed fully with the response lost — the daemon skips the decoded
// prefix of the retried body, so the block is retried on any transient
// failure, network errors included, without risking double ingest. It
// returns the session's ingest totals after the push.
func (c *Client) PushSamplesAt(ctx context.Context, id string, offset int64, samples []float64) (service.IngestResult, error) {
	hdr := http.Header{service.HeaderOffset: []string{strconv.FormatInt(offset, 10)}}
	var res service.IngestResult
	bp, body := encodeSamples(samples)
	err := c.do(ctx, retryAll, http.MethodPost,
		"/v1/sessions/"+id+"/samples", service.ContentTypeRaw, hdr, body, &res)
	if err == nil {
		recycleEncBuf(bp)
	}
	return res, err
}

// encBufPool recycles sample-encode buffers across pushes. A buffer is
// returned to the pool ONLY after its request succeeded: on any failure
// the transport's write loop may still be draining the bytes.Reader
// asynchronously (e.g. the server replied before reading the whole
// body), so the buffer is dropped to the garbage collector instead of
// being handed to a concurrent push mid-read.
var encBufPool sync.Pool

// encodeSamples encodes samples into a pooled little-endian buffer. The
// caller must pass the returned handle to recycleEncBuf once — and only
// once — the request (including every retry) has completed successfully.
func encodeSamples(samples []float64) (*[]byte, []byte) {
	bp, _ := encBufPool.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	need := len(samples) * 8
	if cap(*bp) < need {
		*bp = make([]byte, need)
	}
	body := (*bp)[:need]
	*bp = body
	for i, v := range samples {
		binary.LittleEndian.PutUint64(body[i*8:], math.Float64bits(v))
	}
	return bp, body
}

func recycleEncBuf(bp *[]byte) { encBufPool.Put(bp) }

// sessionOffset asks the daemon for a session's current stream position
// via an empty push — idempotent by construction, so it retries freely.
func (c *Client) sessionOffset(ctx context.Context, id string) (int64, error) {
	var res service.IngestResult
	if err := c.do(ctx, retryAll, http.MethodPost,
		"/v1/sessions/"+id+"/samples", service.ContentTypeRaw, nil, []byte{}, &res); err != nil {
		return 0, err
	}
	return res.SamplesIngested, nil
}

// StreamCapture uploads a whole capture to a session in ChunkSamples
// blocks — the file-less equivalent of SaveCapture + "emprof -i": the
// daemon profiles the samples as they arrive. It first learns the
// session's current stream position, then offset-tags every block
// (PushSamplesAt), so the upload rides out shard hand-offs and lost
// responses exactly once per sample — including when the capture
// continues an earlier upload to the same session.
func (c *Client) StreamCapture(ctx context.Context, id string, capture *Capture) error {
	chunk := c.ChunkSamples
	if chunk <= 0 {
		chunk = 65536
	}
	base, err := c.sessionOffset(ctx, id)
	if err != nil {
		return fmt.Errorf("reading session stream position: %w", err)
	}
	for off := 0; off < len(capture.Samples); off += chunk {
		end := off + chunk
		if end > len(capture.Samples) {
			end = len(capture.Samples)
		}
		if _, err := c.PushSamplesAt(ctx, id, base+int64(off), capture.Samples[off:end]); err != nil {
			return fmt.Errorf("streaming samples [%d:%d): %w", off, end, err)
		}
	}
	return nil
}

// Profile fetches the live snapshot of a session: the causal profile of
// everything decided so far, without disturbing the stream.
func (c *Client) Profile(ctx context.Context, id string) (*SessionSnapshot, error) {
	var snap SessionSnapshot
	if err := c.do(ctx, retryAll, http.MethodGet, "/v1/sessions/"+id+"/profile", "", nil, nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Finalize drains the session's pipeline and returns the final profile —
// identical to Analyze over the same samples. The session is gone
// afterwards.
func (c *Client) Finalize(ctx context.Context, id string) (*Profile, error) {
	var prof Profile
	if err := c.do(ctx, retryAll, http.MethodDelete, "/v1/sessions/"+id, "", nil, nil, &prof); err != nil {
		return nil, err
	}
	return &prof, nil
}

// SessionTrace is the trace endpoint's view of a session: the analyzer's
// retained decision events (oldest first) with drop accounting.
type SessionTrace = service.TraceResponse

// Trace fetches a session's retained decision-trace events — the ring of
// recent DipCandidate/StallAccepted/StallRejected/Resync/QualityFlag
// records the daemon keeps per session — without disturbing the stream.
// Against a daemon too old to serve /v1/sessions/{id}/trace the error
// matches ErrUnsupportedEndpoint (and not ErrSessionNotFound); other
// session calls on the same client are unaffected.
func (c *Client) Trace(ctx context.Context, id string) (*SessionTrace, error) {
	var tr SessionTrace
	if err := c.do(ctx, retryAll, http.MethodGet, "/v1/sessions/"+id+"/trace", "", nil, nil, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// ListSessions returns the daemon's live sessions.
func (c *Client) ListSessions(ctx context.Context) ([]SessionInfo, error) {
	var out []SessionInfo
	if err := c.do(ctx, retryAll, http.MethodGet, "/v1/sessions", "", nil, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// ProfilesRequest selects a slice of a session's rolling profile
// windows. The zero value asks for every retained window.
type ProfilesRequest struct {
	// From and To bound the query in stream seconds: windows overlapping
	// [From, To) are returned. Zero means unbounded on that side.
	From, To float64
	// Limit caps the page size; pair with After to walk the sequence.
	Limit int
	// After is the pagination cursor: only windows with a strictly
	// greater index are returned. The cursor is sent when HasAfter is
	// set or After is positive; the zero value starts at the front.
	After int64
	// HasAfter marks After as an explicit cursor. Cursor loops should
	// copy a ProfilesResponse's NextAfter into After and set HasAfter: a
	// page can legitimately end at window index 0 (NextAfter = 0), which
	// a bare After cannot tell apart from "start at the front".
	HasAfter bool
	// Last, when positive, asks for the newest Last windows instead of
	// the oldest — what a live "tail" display wants.
	Last int
}

// ProfilesResponse is the daemon's answer to a Profiles query: the
// session's retained rolling windows, oldest first, with pagination
// cursors. MergeWindows over a session's complete tumbling sequence
// reproduces its Finalize profile exactly.
type ProfilesResponse = service.ProfilesResponse

// Profiles fetches a session's rolling profile windows — the continuous
// profiling timeline — from a daemon or a fleet router (which reassembles
// windows scattered across shards by hand-offs). Sessions remain
// queryable after Finalize for as long as the daemon's window store
// retains them; a query for a range that retention already evicted
// reports ErrWindowNotRetained.
func (c *Client) Profiles(ctx context.Context, id string, req ProfilesRequest) (*ProfilesResponse, error) {
	q := url.Values{}
	if req.From > 0 {
		q.Set("from", strconv.FormatFloat(req.From, 'g', -1, 64))
	}
	if req.To > 0 {
		q.Set("to", strconv.FormatFloat(req.To, 'g', -1, 64))
	}
	if req.Limit > 0 {
		q.Set("limit", strconv.Itoa(req.Limit))
	}
	if req.HasAfter || req.After > 0 {
		q.Set("after", strconv.FormatInt(req.After, 10))
	}
	if req.Last > 0 {
		q.Set("last", strconv.Itoa(req.Last))
	}
	path := "/v1/sessions/" + id + "/profiles"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var resp ProfilesResponse
	if err := c.do(ctx, retryAll, http.MethodGet, path, "", nil, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
