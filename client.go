package emprof

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"emprof/internal/service"
)

// SessionInfo is the service's list-endpoint view of one live profiling
// session.
type SessionInfo = service.SessionInfo

// SessionSnapshot is a live profile snapshot from the service: the causal
// profile so far, ingest progress, and a per-stall confidence histogram.
type SessionSnapshot = service.Snapshot

// SessionSpec describes a profiling session to open on an emprofd
// daemon.
type SessionSpec struct {
	// SampleRate and ClockHz are the acquisition metadata of the signal
	// about to be streamed (required; usually Capture.SampleRate and
	// Capture.ClockHz).
	SampleRate float64
	ClockHz    float64
	// Device optionally labels the profiled target.
	Device string
	// Config optionally overrides the profiler configuration; nil means
	// DefaultConfig.
	Config *Config
}

// Client talks to an emprofd profiling daemon (cmd/emprofd). The zero
// value is not usable; construct with NewClient.
//
// Transient failures are retried with exponential backoff: GETs always;
// session creation (a lost response at worst leaks a session for the
// daemon's idle TTL to collect); and sample pushes only on 429, which
// the service guarantees it sends before ingesting anything, so the
// retry can never double-count samples. Other mid-stream push failures
// are not retried — the client cannot know how much of the body landed.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:7979".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts per request (default 4).
	MaxRetries int
	// RetryBaseDelay is the first backoff step (default 100ms), doubling
	// per attempt.
	RetryBaseDelay time.Duration
	// ChunkSamples is the number of samples per upload request in
	// StreamCapture (default 65536, i.e. 512 KiB bodies).
	ChunkSamples int
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 4
}

func (c *Client) retryDelay(attempt int) time.Duration {
	d := c.RetryBaseDelay
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	return d << attempt
}

// retryMode selects which failures a request may be retried on.
type retryMode int

const (
	retryAll     retryMode = iota // network errors and transient statuses
	retry429Only                  // only "rejected before ingest" backpressure
)

// transientStatus reports whether an HTTP status indicates a failure
// worth retrying.
func transientStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do issues one request with retry/backoff, decoding a JSON response into
// out when it is non-nil. body, when non-nil, is replayed on each retry.
func (c *Client) do(ctx context.Context, mode retryMode, method, path, contentType string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt <= c.maxRetries(); attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.retryDelay(attempt - 1)):
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			lastErr = err
			if mode == retryAll {
				continue
			}
			return err
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if rerr != nil {
				return rerr
			}
			if out == nil {
				return nil
			}
			return json.Unmarshal(data, out)
		}
		// A 404 without the service's JSON error body means the route is
		// absent from the daemon's mux (an older daemon that predates the
		// endpoint); APIError.Is surfaces it as ErrUnsupportedEndpoint
		// rather than ErrSessionNotFound.
		var ae apiError
		_ = json.Unmarshal(data, &ae)
		lastErr = &APIError{StatusCode: resp.StatusCode, Message: ae.Error}
		retryable := transientStatus(resp.StatusCode)
		if mode == retry429Only {
			retryable = resp.StatusCode == http.StatusTooManyRequests
		}
		if !retryable {
			return lastErr
		}
	}
	return fmt.Errorf("%w: %w", ErrRetriesExhausted, lastErr)
}

// apiError mirrors the service's error body.
type apiError struct {
	Error string `json:"error"`
}

// CreateSession opens a profiling session on the daemon and returns its
// ID.
func (c *Client) CreateSession(ctx context.Context, spec SessionSpec) (string, error) {
	req := service.CreateRequest{
		SampleRate: spec.SampleRate,
		ClockHz:    spec.ClockHz,
		Device:     spec.Device,
		Config:     spec.Config,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	var resp service.CreateResponse
	if err := c.do(ctx, retryAll, http.MethodPost, "/v1/sessions", "application/json", body, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// PushSamples uploads one block of magnitude samples to a session, in the
// raw little-endian float64 wire format. Blocks arrive in call order;
// concurrent pushes to one session are serialised by the daemon but land
// in unspecified order, so keep one uploader per session.
func (c *Client) PushSamples(ctx context.Context, id string, samples []float64) error {
	body := make([]byte, len(samples)*8)
	for i, v := range samples {
		binary.LittleEndian.PutUint64(body[i*8:], math.Float64bits(v))
	}
	return c.do(ctx, retry429Only, http.MethodPost,
		"/v1/sessions/"+id+"/samples", service.ContentTypeRaw, body, nil)
}

// StreamCapture uploads a whole capture to a session in ChunkSamples
// blocks — the file-less equivalent of SaveCapture + "emprof -i": the
// daemon profiles the samples as they arrive.
func (c *Client) StreamCapture(ctx context.Context, id string, capture *Capture) error {
	chunk := c.ChunkSamples
	if chunk <= 0 {
		chunk = 65536
	}
	for off := 0; off < len(capture.Samples); off += chunk {
		end := off + chunk
		if end > len(capture.Samples) {
			end = len(capture.Samples)
		}
		if err := c.PushSamples(ctx, id, capture.Samples[off:end]); err != nil {
			return fmt.Errorf("streaming samples [%d:%d): %w", off, end, err)
		}
	}
	return nil
}

// Profile fetches the live snapshot of a session: the causal profile of
// everything decided so far, without disturbing the stream.
func (c *Client) Profile(ctx context.Context, id string) (*SessionSnapshot, error) {
	var snap SessionSnapshot
	if err := c.do(ctx, retryAll, http.MethodGet, "/v1/sessions/"+id+"/profile", "", nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Finalize drains the session's pipeline and returns the final profile —
// identical to Analyze over the same samples. The session is gone
// afterwards.
func (c *Client) Finalize(ctx context.Context, id string) (*Profile, error) {
	var prof Profile
	if err := c.do(ctx, retryAll, http.MethodDelete, "/v1/sessions/"+id, "", nil, &prof); err != nil {
		return nil, err
	}
	return &prof, nil
}

// SessionTrace is the trace endpoint's view of a session: the analyzer's
// retained decision events (oldest first) with drop accounting.
type SessionTrace = service.TraceResponse

// Trace fetches a session's retained decision-trace events — the ring of
// recent DipCandidate/StallAccepted/StallRejected/Resync/QualityFlag
// records the daemon keeps per session — without disturbing the stream.
// Against a daemon too old to serve /v1/sessions/{id}/trace the error
// matches ErrUnsupportedEndpoint (and not ErrSessionNotFound); other
// session calls on the same client are unaffected.
func (c *Client) Trace(ctx context.Context, id string) (*SessionTrace, error) {
	var tr SessionTrace
	if err := c.do(ctx, retryAll, http.MethodGet, "/v1/sessions/"+id+"/trace", "", nil, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// ListSessions returns the daemon's live sessions.
func (c *Client) ListSessions(ctx context.Context) ([]SessionInfo, error) {
	var out []SessionInfo
	if err := c.do(ctx, retryAll, http.MethodGet, "/v1/sessions", "", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
