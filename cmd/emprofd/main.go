// Command emprofd is the concurrent profiling service: it manages many
// live profiling sessions, each wrapping a streaming EMPROF analyzer,
// ingesting EM capture bytes over HTTP and serving live profile
// snapshots — the deployment the paper implies, where a probe streams
// samples off the target continuously and results are available online
// rather than post-hoc from capture files. Examples:
//
//	emprofd -addr :7979
//	emprofd -addr :7979 -max-sessions 256 -max-session-bytes 4e9 -idle-ttl 2m
//	emsim -device olimex -workload micro:1024:10 -serve-url http://localhost:7979
//	curl -s localhost:7979/v1/sessions
//	curl -s localhost:7979/metrics
//
// With -router it serves as the stateless front of a fleet of emprofd
// shards instead: sessions are mapped onto shards by a consistent hash
// ring, per-session routes proxy to the owner, the session list and
// /metrics aggregate fleet-wide, and membership changes via the
// /v1/fleet/shards admin routes hand live sessions off between shards
// without replay or double ingest:
//
//	emprofd -addr :8080 -router -shards http://localhost:7979,http://localhost:7980
//	curl -s localhost:8080/v1/fleet
//	curl -s -XPOST localhost:8080/v1/fleet/shards -d '{"url":"http://localhost:7981"}'
//
// API (JSON unless noted; every /v1 route is also served at its bare
// unversioned path for pre-versioning clients):
//
//	POST   /v1/sessions               open a session {sample_rate, clock_hz, device?, config?}
//	POST   /v1/sessions/{id}/samples  stream sample bytes (raw float64 LE, or EMPROFCAP with Content-Type application/x-emprofcap)
//	GET    /v1/sessions/{id}/profile  live causal snapshot (stalls so far, quality, confidence histogram)
//	GET    /v1/sessions/{id}/profiles rolling profile windows (with -window): ?from=&to= stream seconds, ?limit=&after=&last= paging
//	GET    /v1/sessions/{id}/trace    recent analyzer decision events (ring of -trace-ring records)
//	DELETE /v1/sessions/{id}          finalize; returns the full profile
//	GET    /v1/sessions               list live sessions
//	GET    /v1/metrics                Prometheus text format (includes the emprofd_trace_* decision aggregates)
//	GET    /debug/pprof/              daemon self-profiling
//
// The /v1 prefix is the supported surface; the bare aliases answer with
// Deprecation headers and will be removed.
//
// Continuous profiling: -window W slices every session's stall stream
// into rolling profile windows of W seconds (stride -window-stride,
// default tumbling), persisted in a window store and served with
// time-range queries at /v1/sessions/{id}/profiles. With -store-dir the
// store is on disk — append-only segments, crash-safe reopen — so
// profile history survives daemon restarts; -store-max-bytes and
// -store-max-age bound retention. `emprof top -url ...` renders the
// fleet's live sessions and window tails from this endpoint:
//
//	emprofd -addr :7979 -window 0.5 -store-dir /var/lib/emprofd
//	curl -s 'localhost:7979/v1/sessions/ID/profiles?from=1.5&to=3.0'
//	emprof top -url http://localhost:7979
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"emprof/internal/fleet"
	"emprof/internal/profstore"
	"emprof/internal/service"
	"emprof/internal/version"
)

func main() {
	var (
		addr        = flag.String("addr", ":7979", "listen address")
		maxSessions = flag.Int("max-sessions", service.DefaultMaxSessions, "maximum concurrently-open sessions (excess creates get 429)")
		maxBytes    = flag.Float64("max-session-bytes", service.DefaultMaxSessionBytes, "per-session ingest byte budget (excess uploads get 429)")
		idleTTL     = flag.Duration("idle-ttl", service.DefaultIdleTTL, "idle time after which a session is finalized and collected")
		readTimeout = flag.Duration("read-timeout", service.DefaultReadTimeout, "per-request body read deadline")
		gcInterval  = flag.Duration("gc-interval", 0, "idle-session sweep interval (0 = idle-ttl/4)")
		traceRing   = flag.Int("trace-ring", service.DefaultTraceRing, "per-session decision-trace ring capacity served at /v1/sessions/{id}/trace (negative disables tracing)")
		showVersion = flag.Bool("version", false, "print version and exit")

		windowS       = flag.Float64("window", 0, "continuous profiling: rolling profile window width in stream seconds (0 disables windowing)")
		windowStrideS = flag.Float64("window-stride", 0, "window stride in stream seconds (0 = tumbling, stride = width)")
		queueBlocks   = flag.Int("queue-blocks", 0, "per-session decode→analysis queue depth in ingest blocks; full queues backpressure uploads (0 = default)")
		storeDir      = flag.String("store-dir", "", "window store directory; empty keeps windows in memory only (lost on restart)")
		storeMaxBytes = flag.Float64("store-max-bytes", 0, "window store retention cap in bytes; oldest segments evict past it (0 = default 256 MiB, negative = unbounded)")
		storeMaxAge   = flag.Duration("store-max-age", 0, "window store age cap; segments older than this evict (0 = no age eviction)")

		router         = flag.Bool("router", false, "run as a fleet router in front of -shards instead of serving sessions directly")
		shards         = flag.String("shards", "", "with -router: comma-separated shard base URLs, e.g. http://10.0.0.1:7979,http://10.0.0.2:7979")
		ringSeed       = flag.Uint64("ring-seed", 0, "with -router: consistent-hash ring seed (every router replica in front of one fleet must agree)")
		vnodes         = flag.Int("vnodes", 0, "with -router: virtual nodes per shard on the ring (0 = default)")
		healthInterval = flag.Duration("health-interval", 0, "with -router: shard health-probe spacing (0 = default 2s)")
		failThreshold  = flag.Int("fail-threshold", 0, "with -router: consecutive probe failures before a shard is marked down (0 = default 3)")
		moveTimeout    = flag.Duration("move-timeout", 0, "with -router: per-shard-call deadline during rebalance hand-off (0 = default 30s)")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("emprofd %s\n", version.Version)
		return
	}
	if *router {
		runRouter(*addr, *shards, *ringSeed, *vnodes, *healthInterval, *failThreshold, *moveTimeout)
		return
	}

	var store *profstore.Store
	if *storeDir != "" || *storeMaxBytes != 0 || *storeMaxAge != 0 {
		var err error
		store, err = profstore.Open(profstore.Options{
			Dir:      *storeDir,
			MaxBytes: int64(*storeMaxBytes),
			MaxAge:   *storeMaxAge,
		})
		if err != nil {
			fatal(err)
		}
	}
	srv := service.New(service.Config{
		MaxSessions:     *maxSessions,
		MaxSessionBytes: int64(*maxBytes),
		IdleTTL:         *idleTTL,
		ReadTimeout:     *readTimeout,
		TraceRing:       *traceRing,
		WindowS:         *windowS,
		WindowStrideS:   *windowStrideS,
		QueueBlocks:     *queueBlocks,
		Store:           store,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "emprofd: "+format+"\n", args...)
		},
	})
	stopGC := srv.StartGC(*gcInterval)
	defer stopGC()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("emprofd %s listening on %s (max %d sessions, %s idle TTL)\n",
		version.Version, *addr, *maxSessions, *idleTTL)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain handlers, then finalize
	// every in-flight session so no stream is abandoned mid-pipeline.
	fmt.Println("emprofd: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "emprofd: shutdown:", err)
	}
	srv.Close()
	if store != nil {
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "emprofd: window store:", err)
		}
	}
}

// runRouter serves the fleet front: session routing over a consistent
// hash ring, fleet-wide list/metrics aggregation, health-checked shard
// membership with live hand-off on /v1/fleet/shards changes.
func runRouter(addr, shardList string, seed uint64, vnodes int, healthInterval time.Duration, failThreshold int, moveTimeout time.Duration) {
	var urls []string
	for _, s := range strings.Split(shardList, ",") {
		if s = strings.TrimSpace(s); s != "" {
			urls = append(urls, s)
		}
	}
	rt, err := fleet.NewRouter(fleet.Config{
		Shards:         urls,
		Seed:           seed,
		VirtualNodes:   vnodes,
		HealthInterval: healthInterval,
		FailThreshold:  failThreshold,
		MoveTimeout:    moveTimeout,
	})
	if err != nil {
		fatal(err)
	}
	stop := rt.Start()
	defer stop()

	hs := &http.Server{
		Addr:              addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("emprofd %s routing on %s for %d shards\n", version.Version, addr, len(urls))

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("emprofd: router shutting down")
	shctx, shcancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer shcancel()
	if err := hs.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "emprofd: shutdown:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emprofd:", err)
	os.Exit(1)
}
