// Command emprofd is the concurrent profiling service: it manages many
// live profiling sessions, each wrapping a streaming EMPROF analyzer,
// ingesting EM capture bytes over HTTP and serving live profile
// snapshots — the deployment the paper implies, where a probe streams
// samples off the target continuously and results are available online
// rather than post-hoc from capture files. Examples:
//
//	emprofd -addr :7979
//	emprofd -addr :7979 -max-sessions 256 -max-session-bytes 4e9 -idle-ttl 2m
//	emsim -device olimex -workload micro:1024:10 -serve-url http://localhost:7979
//	curl -s localhost:7979/v1/sessions
//	curl -s localhost:7979/metrics
//
// API (JSON unless noted; every /v1 route is also served at its bare
// unversioned path for pre-versioning clients):
//
//	POST   /v1/sessions               open a session {sample_rate, clock_hz, device?, config?}
//	POST   /v1/sessions/{id}/samples  stream sample bytes (raw float64 LE, or EMPROFCAP with Content-Type application/x-emprofcap)
//	GET    /v1/sessions/{id}/profile  live causal snapshot (stalls so far, quality, confidence histogram)
//	GET    /v1/sessions/{id}/trace    recent analyzer decision events (ring of -trace-ring records)
//	DELETE /v1/sessions/{id}          finalize; returns the full profile
//	GET    /v1/sessions               list live sessions
//	GET    /v1/metrics                Prometheus text format (includes the emprofd_trace_* decision aggregates)
//	GET    /debug/pprof/              daemon self-profiling
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"emprof/internal/service"
	"emprof/internal/version"
)

func main() {
	var (
		addr        = flag.String("addr", ":7979", "listen address")
		maxSessions = flag.Int("max-sessions", service.DefaultMaxSessions, "maximum concurrently-open sessions (excess creates get 429)")
		maxBytes    = flag.Float64("max-session-bytes", service.DefaultMaxSessionBytes, "per-session ingest byte budget (excess uploads get 429)")
		idleTTL     = flag.Duration("idle-ttl", service.DefaultIdleTTL, "idle time after which a session is finalized and collected")
		readTimeout = flag.Duration("read-timeout", service.DefaultReadTimeout, "per-request body read deadline")
		gcInterval  = flag.Duration("gc-interval", 0, "idle-session sweep interval (0 = idle-ttl/4)")
		traceRing   = flag.Int("trace-ring", service.DefaultTraceRing, "per-session decision-trace ring capacity served at /v1/sessions/{id}/trace (negative disables tracing)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("emprofd %s\n", version.Version)
		return
	}

	srv := service.New(service.Config{
		MaxSessions:     *maxSessions,
		MaxSessionBytes: int64(*maxBytes),
		IdleTTL:         *idleTTL,
		ReadTimeout:     *readTimeout,
		TraceRing:       *traceRing,
	})
	stopGC := srv.StartGC(*gcInterval)
	defer stopGC()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("emprofd %s listening on %s (max %d sessions, %s idle TTL)\n",
		version.Version, *addr, *maxSessions, *idleTTL)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain handlers, then finalize
	// every in-flight session so no stream is abandoned mid-pipeline.
	fmt.Println("emprofd: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "emprofd: shutdown:", err)
	}
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emprofd:", err)
	os.Exit(1)
}
