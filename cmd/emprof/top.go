package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"emprof"
	"emprof/internal/version"
)

// runTop implements `emprof top`: a live, top(1)-style view of an
// emprofd daemon or fleet router. Without -session it tabulates the
// fleet's sessions with each one's newest profile window; with -session
// it tails that session's rolling windows — the continuous-profiling
// timeline served by GET /v1/sessions/{id}/profiles. -once renders a
// single frame without clearing the terminal, for scripts and CI.
func runTop(args []string) {
	fs := flag.NewFlagSet("emprof top", flag.ExitOnError)
	var (
		url      = fs.String("url", "http://localhost:7979", "emprofd daemon or fleet router base URL")
		session  = fs.String("session", "", "tail one session's rolling windows instead of listing all sessions")
		interval = fs.Duration("interval", 2*time.Second, "refresh interval")
		last     = fs.Int("last", 10, "with -session: newest windows to show")
		once     = fs.Bool("once", false, "render one frame and exit (no screen clearing)")
	)
	fs.Parse(args)

	client := emprof.NewClient(*url, emprof.WithUserAgent("emprof-top/"+version.Version))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for {
		var buf strings.Builder
		var err error
		if *session != "" {
			err = renderSessionTop(ctx, &buf, client, *session, *last)
		} else {
			err = renderFleetTop(ctx, &buf, client)
		}
		if err != nil {
			fatal(err)
		}
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear screen
		}
		os.Stdout.WriteString(buf.String())
		if *once {
			return
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return
		case <-time.After(*interval):
		}
	}
}

// renderFleetTop draws the all-sessions table: one row per live session,
// joined with its newest profile window when the daemon runs continuous
// profiling.
func renderFleetTop(ctx context.Context, w *strings.Builder, client *emprof.Client) error {
	infos, err := client.ListSessions(ctx)
	if err != nil {
		return err
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].CreatedAt.Before(infos[j].CreatedAt) })
	fmt.Fprintf(w, "emprof top — %d session(s)\n\n", len(infos))
	fmt.Fprintf(w, "%-16s %-10s %-9s %12s %8s %12s %8s  %s\n",
		"SESSION", "DEVICE", "STATE", "SAMPLES", "STALLS", "WIN STALL%", "WINDOWS", "LAST WINDOW")
	for _, in := range infos {
		winCol, stallPct, lastCol := "-", "-", "-"
		// The newest window, if the daemon windows this session. A daemon
		// without windowing answers an empty 200; one predating the
		// endpoint answers a bare 404 — both render as "-".
		if resp, err := client.Profiles(ctx, in.ID, emprof.ProfilesRequest{Last: 1}); err == nil && len(resp.Windows) > 0 {
			win := resp.Windows[len(resp.Windows)-1]
			winCol = fmt.Sprintf("%d", resp.LatestIndex+1)
			stallPct = fmt.Sprintf("%.2f%%", 100*windowStallFraction(win))
			lastCol = fmt.Sprintf("[%.3f, %.3f) ms  %d misses", win.StartS*1e3, win.EndS*1e3, win.Misses)
		}
		fmt.Fprintf(w, "%-16s %-10s %-9s %12d %8d %12s %8s  %s\n",
			shortID(in.ID), in.Device, in.State, in.SamplesIngested, in.Stalls, stallPct, winCol, lastCol)
	}
	return nil
}

// renderSessionTop draws one session's window tail, newest last.
func renderSessionTop(ctx context.Context, w *strings.Builder, client *emprof.Client, id string, last int) error {
	resp, err := client.Profiles(ctx, id, emprof.ProfilesRequest{Last: last})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "emprof top — session %s (%s), %d window(s) retained\n\n",
		shortID(id), resp.State, resp.LatestIndex+1)
	fmt.Fprintf(w, "%6s %20s %8s %8s %12s %8s  %s\n",
		"WINDOW", "SPAN (ms)", "MISSES", "REFRESH", "STALL CYC", "STALL%", "TOP REGION")
	for _, win := range resp.Windows {
		region := "-"
		if len(win.Regions) > 0 {
			top := win.Regions[0]
			for _, r := range win.Regions[1:] {
				if r.StallCycles > top.StallCycles {
					top = r
				}
			}
			region = top.Name
			if region == "" {
				region = fmt.Sprintf("region %d", top.Region)
			}
			region = fmt.Sprintf("%s (%d misses)", region, top.Misses)
		}
		idx := fmt.Sprintf("%d", win.Index)
		if win.Final {
			idx += "*"
		}
		fmt.Fprintf(w, "%6s %20s %8d %8d %12.0f %8s  %s\n",
			idx,
			fmt.Sprintf("[%.3f, %.3f)", win.StartS*1e3, win.EndS*1e3),
			win.Misses, win.RefreshStalls, win.StallCycles,
			fmt.Sprintf("%.2f%%", 100*windowStallFraction(win)), region)
	}
	if resp.Truncated {
		fmt.Fprintln(w, "\n(older windows evicted by retention)")
	}
	if len(resp.Windows) > 0 && resp.Windows[len(resp.Windows)-1].Final {
		fmt.Fprintln(w, "(* final window — session ended)")
	}
	return nil
}

// windowStallFraction is the window's stalled share of its own span,
// computed from per-stall durations and the window bounds in seconds —
// no clock metadata needed, so it works against detached fan-in
// responses too.
func windowStallFraction(win emprof.ProfileWindow) float64 {
	dt := win.EndS - win.StartS
	if dt <= 0 {
		return 0
	}
	var stallS float64
	for _, s := range win.Stalls {
		stallS += s.DurationS
	}
	return stallS / dt
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
