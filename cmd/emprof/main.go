// Command emprof applies the EMPROF analysis to a recorded EM capture
// (acquired with emsim, or any capture in the same format) and reports the
// LLC-miss stalls it finds. Examples:
//
//	emprof -i run.cap
//	emprof -i run.cap -hist -rate
//	emprof -i run.cap -enter 0.3 -min-stall 120e-9
//	emprof -i long.cap -workers 0      # parallel analysis, same results
//	emprof -i run.cap -trace out.jsonl # record every analyzer decision
//
// The `top` subcommand watches a live emprofd daemon (or fleet router)
// instead of a capture file: it refreshes a table of the live sessions —
// or, with -session, one session's rolling profile windows — from the
// continuous-profiling endpoint:
//
//	emprof top -url http://localhost:7979
//	emprof top -url http://localhost:7979 -session 3f2a... -last 20
//	emprof top -once             # single frame, script/CI friendly
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"emprof"
	"emprof/internal/em"
	"emprof/internal/version"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "top" {
		runTop(os.Args[2:])
		return
	}
	var (
		in       = flag.String("i", "capture.cap", "input capture file")
		enter    = flag.Float64("enter", 0, "override dip-entry threshold (0 = default)")
		exit     = flag.Float64("exit", 0, "override dip-exit threshold (0 = default)")
		minStall = flag.Float64("min-stall", 0, "override minimum stall duration in seconds (0 = default)")
		window   = flag.Float64("window", 0, "override normalisation window in seconds (0 = default)")
		hist     = flag.Bool("hist", false, "print the stall-latency histogram")
		rate     = flag.Bool("rate", false, "print the miss rate over time")
		events   = flag.Int("events", 0, "print the first N detected stalls")
		workers  = flag.Int("workers", 1, "analysis worker count: 1 = sequential, 0 = GOMAXPROCS; results are identical either way")
		traceOut = flag.String("trace", "", "write the analyzer's decision trace (dip candidates, accepts, rejects, resyncs, stage timings) to this JSONL file")
		showVer  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Printf("emprof %s\n", version.Version)
		return
	}

	cap, err := em.LoadCapture(*in)
	if err != nil {
		fatal(err)
	}
	cfg := emprof.DefaultConfig()
	if *enter > 0 {
		cfg.EnterThreshold = *enter
	}
	if *exit > 0 {
		cfg.ExitThreshold = *exit
	}
	if *minStall > 0 {
		cfg.MinStallS = *minStall
		if cfg.LongStallS < cfg.MinStallS {
			cfg.LongStallS = cfg.MinStallS
		}
	}
	if *window > 0 {
		cfg.NormWindowS = *window
	}

	opts := []emprof.Option{emprof.WithWorkers(*workers)}
	var rec *emprof.TraceJSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rec = emprof.NewTraceJSONL(f)
		opts = append(opts, emprof.WithObserver(rec))
	}
	an, err := emprof.NewAnalyzer(cfg, opts...)
	if err != nil {
		fatal(err)
	}
	prof, err := an.Run(context.Background(), cap)
	if err != nil {
		fatal(err)
	}
	if rec != nil {
		if err := rec.Flush(); err != nil {
			fatal(fmt.Errorf("writing trace: %w", err))
		}
	}

	fmt.Printf("capture: %d samples at %.2f MHz, clock %.3f GHz, %.3f ms\n",
		len(cap.Samples), cap.SampleRate/1e6, cap.ClockHz/1e9, cap.Duration()*1e3)
	fmt.Printf("LLC misses (stall events):  %d\n", prof.Misses)
	fmt.Printf("refresh-coincident stalls:  %d\n", prof.RefreshStalls)
	fmt.Printf("total stall time:           %.0f cycles (%.2f%% of execution)\n",
		prof.StallCycles, 100*prof.StallFraction())
	if len(prof.Stalls) > 0 {
		fmt.Printf("average stall:              %.0f cycles (%.0f ns)\n",
			prof.AvgStallCycles(), prof.AvgStallCycles()/cap.ClockHz*1e9)
	}
	fmt.Printf("signal quality:             %s\n", prof.Quality)
	if len(prof.Stalls) > 0 {
		fmt.Printf("mean stall confidence:      %.2f\n", prof.MeanConfidence())
	}

	if *hist && len(prof.Stalls) > 0 {
		fmt.Println("\nstall-latency histogram (cycles):")
		h := prof.LatencyHistogram(0, 1600, 16)
		for i, c := range h.Counts {
			fmt.Printf("  %6.0f  %6d\n", h.BinCenter(i), c)
		}
		fmt.Printf("  tail >= 300 cycles: %.1f%%\n", 100*h.TailFraction(300))
	}
	if *rate {
		fmt.Println("\nmisses per time bin:")
		binS := cap.Duration() / 40
		if binS <= 0 {
			binS = 1e-3
		}
		for i, v := range prof.MissRateSeries(binS) {
			fmt.Printf("  %8.3f ms  %d\n", float64(i)*binS*1e3, v)
		}
	}
	for i, s := range prof.Stalls {
		if i >= *events {
			break
		}
		kind := "miss"
		if s.Refresh {
			kind = "refresh"
		}
		fmt.Printf("  stall %4d: t=%9.3f µs  Δt=%7.1f ns  %6.0f cycles  depth=%.2f  conf=%.2f  %s\n",
			i, s.StartS*1e6, s.DurationS*1e9, s.Cycles, s.Depth, s.Confidence, kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emprof:", err)
	os.Exit(1)
}
