// Command embench regenerates the paper's tables and figures from the
// simulated device stack. Examples:
//
//	embench -list
//	embench -run table2
//	embench -run fig12 -scale 2
//	embench -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"emprof/internal/experiments"
	"emprof/internal/version"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		run   = flag.String("run", "", "comma-separated experiment names (e.g. table2,fig11)")
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.Float64("scale", 1, "SPEC/boot instruction budget in millions")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		quick = flag.Bool("quick", false, "shrunken grids for a fast smoke run")
		ver   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *ver {
		fmt.Printf("embench %s\n", version.Version)
		return
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	var names []string
	switch {
	case *all:
		names = experiments.Names()
	case *run != "":
		names = strings.Split(*run, ",")
	default:
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed, Quick: *quick}
	for _, n := range names {
		n = strings.TrimSpace(n)
		start := time.Now()
		if err := experiments.Run(n, opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "embench: %s: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", n, time.Since(start).Round(time.Millisecond))
	}
}
