// Command embench regenerates the paper's tables and figures from the
// simulated device stack, and hosts the synthesis-pipeline benchmark
// harness used by CI's perf-regression gate. Examples:
//
//	embench -list
//	embench -run table2
//	embench -run fig12 -scale 2
//	embench -all
//	embench -bench-synthesis -bench-out BENCH_synthesis.json
//	embench -bench-synthesis -bench-check BENCH_synthesis.json
//	embench -bench-observer-guard
//	embench -bench-ingest -bench-out BENCH_ingest.json
//	embench -bench-ingest -quick -bench-check BENCH_ingest.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"emprof/internal/experiments"
	"emprof/internal/version"
)

func main() {
	// realMain keeps its deferred profile writers ahead of the process
	// exit (os.Exit directly in the flag-handling body would skip them).
	os.Exit(realMain())
}

func realMain() int {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		run   = flag.String("run", "", "comma-separated experiment names (e.g. table2,fig11)")
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.Float64("scale", 1, "SPEC/boot instruction budget in millions")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		quick = flag.Bool("quick", false, "shrunken grids for a fast smoke run")
		ver   = flag.Bool("version", false, "print version and exit")

		benchSynth      = flag.Bool("bench-synthesis", false, "run the synthesis pipeline benchmarks")
		benchCount      = flag.Int("bench-count", 3, "benchmark repetitions per case (best run is reported)")
		benchOut        = flag.String("bench-out", "", "write benchmark results as JSON to this file")
		benchCheck      = flag.String("bench-check", "", "compare results against this baseline JSON; exit non-zero on regression")
		benchMaxRatio   = flag.Float64("bench-max-ratio", 0, "allowed ns/cycle ratio over baseline before failing (0 = default 1.3)")
		benchNoiseFloor = flag.Float64("bench-noise-floor", 0, "absolute ns/cycle slack on top of the ratio (0 = default 0.5, negative disables)")
		benchAllocRatio = flag.Float64("bench-alloc-ratio", 0, "allowed allocs/op ratio over baseline (0 = default 1.25, negative disables the alloc gate)")
		benchGuard      = flag.Bool("bench-observer-guard", false, "verify the trace layer's nil-observer fast path: 0 allocs/op steady state and <3% ns/cycle observer overhead")

		benchIngest         = flag.Bool("bench-ingest", false, "run the fleet ingest benchmark: concurrent streams through an in-process router+shards fleet with one forced rebalance")
		benchIngestShards   = flag.Int("bench-ingest-shards", 0, "fleet shard count (0 = default 2)")
		benchIngestSessions = flag.Int("bench-ingest-sessions", 0, "concurrent capture streams (0 = default 16, or 4 with -quick)")
		benchIngestSamples  = flag.Int("bench-ingest-samples", 0, "samples per stream (0 = default 240000, or 40000 with -quick)")
		benchWindows        = flag.Float64("bench-windows", 0, "with -bench-ingest: enable continuous profiling with rolling windows of this width in stream seconds (0 = off); each session's merged window sequence is verified against the batch profile")
		benchLatencyFloor   = flag.Float64("bench-latency-floor", 0, "absolute ms slack on top of the ingest latency ratio (0 = default 2, negative disables)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *ver {
		fmt.Printf("embench %s\n", version.Version)
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "embench: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "embench: cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "embench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "embench: memprofile: %v\n", err)
			}
		}()
	}

	if *benchSynth {
		gate := experiments.GateOptions{
			MaxRatio:             *benchMaxRatio,
			NoiseFloorNsPerCycle: *benchNoiseFloor,
			MaxAllocRatio:        *benchAllocRatio,
		}
		if err := runSynthBench(*benchCount, *quick, *benchOut, *benchCheck, gate); err != nil {
			fmt.Fprintf(os.Stderr, "embench: %v\n", err)
			return 1
		}
		return 0
	}

	if *benchIngest {
		gate := experiments.GateOptions{
			MaxRatio:       *benchMaxRatio,
			LatencyFloorMs: *benchLatencyFloor,
		}
		opts := experiments.IngestBenchOptions{
			Shards:            *benchIngestShards,
			Sessions:          *benchIngestSessions,
			SamplesPerSession: *benchIngestSamples,
			Rebalance:         true,
			WindowS:           *benchWindows,
		}
		if *quick {
			if opts.Sessions == 0 {
				opts.Sessions = 4
			}
			if opts.SamplesPerSession == 0 {
				opts.SamplesPerSession = 40000
			}
		}
		if err := runIngestBench(opts, *benchOut, *benchCheck, gate); err != nil {
			fmt.Fprintf(os.Stderr, "embench: %v\n", err)
			return 1
		}
		return 0
	}

	if *benchGuard {
		if err := experiments.RunObserverGuard(*benchCount, *quick, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "embench: %v\n", err)
			return 1
		}
		fmt.Println("observer guard passed")
		return 0
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return 0
	}
	var names []string
	switch {
	case *all:
		names = experiments.Names()
	case *run != "":
		names = strings.Split(*run, ",")
	default:
		flag.Usage()
		return 2
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed, Quick: *quick}
	for _, n := range names {
		n = strings.TrimSpace(n)
		start := time.Now()
		if err := experiments.Run(n, opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "embench: %s: %v\n", n, err)
			return 1
		}
		fmt.Printf("[%s done in %v]\n\n", n, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// runIngestBench runs the fleet load harness, optionally writes the
// JSON report, and optionally gates it against the committed baseline.
func runIngestBench(opts experiments.IngestBenchOptions, outPath, checkPath string, gate experiments.GateOptions) error {
	rep, err := experiments.RunIngestBench(opts, os.Stdout)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := experiments.WriteIngestBench(rep, outPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if checkPath != "" {
		base, err := experiments.LoadIngestBench(checkPath)
		if err != nil {
			return err
		}
		if err := experiments.CompareIngestBench(rep, base, gate, os.Stdout); err != nil {
			return err
		}
		fmt.Println("ingest benchmark check passed")
	}
	return nil
}

// runSynthBench runs the benchmark set, optionally writes the JSON report,
// and optionally gates it against a baseline.
func runSynthBench(count int, quick bool, outPath, checkPath string, gate experiments.GateOptions) error {
	rep, err := experiments.RunSynthBench(count, quick, os.Stdout)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := experiments.WriteSynthBench(rep, outPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if checkPath != "" {
		base, err := experiments.LoadSynthBench(checkPath)
		if err != nil {
			return err
		}
		if err := experiments.CompareSynthBench(rep, base, gate, os.Stdout); err != nil {
			return err
		}
		fmt.Println("benchmark check passed")
	}
	return nil
}
