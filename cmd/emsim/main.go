// Command emsim runs a workload on a simulated device and records the EM
// capture (plus optional ground truth), standing in for the paper's probe
// + spectrum-analyzer acquisition. Examples:
//
//	emsim -device olimex -workload micro:1024:10 -o run.cap
//	emsim -device samsung -workload spec:mcf -scale 2 -bw 60e6 -o mcf.cap
//	emsim -device olimex -workload boot -truth -o boot.cap
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"emprof"
	"emprof/internal/em"
)

func main() {
	var (
		deviceName = flag.String("device", "olimex", "target device: alcatel, samsung, olimex, sesc")
		workload   = flag.String("workload", "micro:256:8", "workload: micro:TM:CM, spec:NAME, boot, or file:PATH.json")
		scale      = flag.Float64("scale", 1, "spec/boot instruction budget in millions")
		bw         = flag.Float64("bw", 0, "measurement bandwidth in Hz (0 = device default)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		noiseFree  = flag.Bool("noise-free", false, "disable probe noise and supply drift")
		out        = flag.String("o", "capture.cap", "output capture file")
		truth      = flag.Bool("truth", false, "print ground-truth summary to stdout")
	)
	flag.Parse()

	dev, err := emprof.DeviceByName(*deviceName)
	if err != nil {
		fatal(err)
	}
	wl, err := buildWorkload(*workload, *scale)
	if err != nil {
		fatal(err)
	}
	run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{
		Seed:        *seed,
		BandwidthHz: *bw,
		NoiseFree:   *noiseFree,
	})
	if err != nil {
		fatal(err)
	}
	if err := em.SaveCapture(*out, run.Capture); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d samples at %.2f MHz (%.3f ms on %s)\n",
		*out, len(run.Capture.Samples), run.Capture.SampleRate/1e6,
		run.Capture.Duration()*1e3, dev.Name)
	if *truth {
		tr := run.Truth
		fmt.Printf("ground truth: cycles=%d instructions=%d IPC=%.2f\n",
			tr.Cycles, tr.Instructions, tr.IPC())
		fmt.Printf("  LLC misses=%d stall intervals=%d fully-stalled cycles=%d (%.2f%%)\n",
			len(tr.Misses), len(tr.Stalls), tr.FullStallCycles, 100*tr.StallFraction())
	}
}

// buildWorkload parses the -workload specification.
func buildWorkload(spec string, scale float64) (emprof.Workload, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "micro":
		if len(parts) != 3 {
			return nil, fmt.Errorf("micro workload needs micro:TM:CM, got %q", spec)
		}
		tm, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad TM: %w", err)
		}
		cm, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("bad CM: %w", err)
		}
		return emprof.Microbenchmark(tm, cm)
	case "spec":
		if len(parts) != 2 {
			return nil, fmt.Errorf("spec workload needs spec:NAME, got %q", spec)
		}
		return emprof.SPECWorkload(parts[1], scale)
	case "boot":
		return emprof.BootWorkload(scale, 1), nil
	case "file":
		if len(parts) != 2 {
			return nil, fmt.Errorf("file workload needs file:PATH, got %q", spec)
		}
		return emprof.LoadWorkload(parts[1])
	default:
		return nil, fmt.Errorf("unknown workload %q (micro:TM:CM, spec:NAME, boot, file:PATH)", spec)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emsim:", err)
	os.Exit(1)
}
