// Command emsim runs a workload on a simulated device and records the EM
// capture (plus optional ground truth), standing in for the paper's probe
// + spectrum-analyzer acquisition. Examples:
//
//	emsim -device olimex -workload micro:1024:10 -o run.cap
//	emsim -device samsung -workload spec:mcf -scale 2 -bw 60e6 -o mcf.cap
//	emsim -device olimex -workload boot -truth -o boot.cap
//	emsim -device olimex -fault-dropout 0.005 -fault-gain-steps 50 -o rough.cap
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"emprof"
	"emprof/internal/em"
)

func main() {
	var (
		deviceName = flag.String("device", "olimex", "target device: alcatel, samsung, olimex, sesc")
		workload   = flag.String("workload", "micro:256:8", "workload: micro:TM:CM, spec:NAME, boot, or file:PATH.json")
		scale      = flag.Float64("scale", 1, "spec/boot instruction budget in millions")
		bw         = flag.Float64("bw", 0, "measurement bandwidth in Hz (0 = device default)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		noiseFree  = flag.Bool("noise-free", false, "disable probe noise and supply drift")
		out        = flag.String("o", "capture.cap", "output capture file")
		truth      = flag.Bool("truth", false, "print ground-truth summary to stdout")

		// Acquisition fault injection (internal/faults): impair the clean
		// capture before writing it, to exercise robustness downstream.
		faultDropout    = flag.Float64("fault-dropout", 0, "fraction of samples lost to zero-filled dropouts")
		faultDropoutLen = flag.Float64("fault-dropout-len", 0, "mean dropout gap length in samples (0 = default)")
		faultClip       = flag.Float64("fault-clip", 0, "ADC saturation ceiling (absolute magnitude, 0 = off)")
		faultGainSteps  = flag.Float64("fault-gain-steps", 0, "expected receiver gain steps per second")
		faultDrift      = flag.Float64("fault-drift", 0, "probe-coupling drift depth in [0,1)")
		faultBurst      = flag.Float64("fault-burst", 0, "fraction of samples hit by impulsive RF bursts")
		faultNaN        = flag.Float64("fault-nan", 0, "per-sample probability of NaN corruption")
		faultSeed       = flag.Uint64("fault-seed", 1, "fault-injection seed")
	)
	flag.Parse()

	dev, err := emprof.DeviceByName(*deviceName)
	if err != nil {
		fatal(err)
	}
	wl, err := buildWorkload(*workload, *scale)
	if err != nil {
		fatal(err)
	}
	run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{
		Seed:        *seed,
		BandwidthHz: *bw,
		NoiseFree:   *noiseFree,
	})
	if err != nil {
		fatal(err)
	}
	capture := run.Capture
	spec := emprof.FaultSpec{
		DropoutRate:    *faultDropout,
		DropoutMeanLen: *faultDropoutLen,
		ClipLevel:      *faultClip,
		GainStepsPerS:  *faultGainSteps,
		DriftDepth:     *faultDrift,
		BurstRate:      *faultBurst,
		NaNRate:        *faultNaN,
		Seed:           *faultSeed,
	}
	// Gate on any fault flag being set at all (not spec.Enabled, which is
	// false for out-of-range values): a typo like -fault-dropout -0.1 must
	// reach validation and error out, not be silently ignored.
	if spec != (emprof.FaultSpec{Seed: spec.Seed}) {
		impaired, rep, err := emprof.InjectFaults(capture, spec)
		if err != nil {
			fatal(err)
		}
		capture = impaired
		fmt.Printf("injected faults: %s\n", rep)
	}
	if err := em.SaveCapture(*out, capture); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d samples at %.2f MHz (%.3f ms on %s)\n",
		*out, len(capture.Samples), capture.SampleRate/1e6,
		capture.Duration()*1e3, dev.Name)
	if *truth {
		tr := run.Truth
		fmt.Printf("ground truth: cycles=%d instructions=%d IPC=%.2f\n",
			tr.Cycles, tr.Instructions, tr.IPC())
		fmt.Printf("  LLC misses=%d stall intervals=%d fully-stalled cycles=%d (%.2f%%)\n",
			len(tr.Misses), len(tr.Stalls), tr.FullStallCycles, 100*tr.StallFraction())
	}
}

// buildWorkload parses the -workload specification.
func buildWorkload(spec string, scale float64) (emprof.Workload, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "micro":
		if len(parts) != 3 {
			return nil, fmt.Errorf("micro workload needs micro:TM:CM, got %q", spec)
		}
		tm, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad TM: %w", err)
		}
		cm, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("bad CM: %w", err)
		}
		return emprof.Microbenchmark(tm, cm)
	case "spec":
		if len(parts) != 2 {
			return nil, fmt.Errorf("spec workload needs spec:NAME, got %q", spec)
		}
		return emprof.SPECWorkload(parts[1], scale)
	case "boot":
		return emprof.BootWorkload(scale, 1), nil
	case "file":
		if len(parts) != 2 {
			return nil, fmt.Errorf("file workload needs file:PATH, got %q", spec)
		}
		return emprof.LoadWorkload(parts[1])
	default:
		return nil, fmt.Errorf("unknown workload %q (micro:TM:CM, spec:NAME, boot, file:PATH)", spec)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emsim:", err)
	os.Exit(1)
}
