// Command emsim runs a workload on a simulated device and records the EM
// capture (plus optional ground truth), standing in for the paper's probe
// + spectrum-analyzer acquisition. Examples:
//
//	emsim -device olimex -workload micro:1024:10 -o run.cap
//	emsim -device samsung -workload spec:mcf -scale 2 -bw 60e6 -o mcf.cap
//	emsim -device olimex -workload boot -truth -o boot.cap
//	emsim -device olimex -fault-dropout 0.005 -fault-gain-steps 50 -o rough.cap
//
// With -parallel it switches to sweep mode: the (comma-separated) device
// and workload lists, -seeds and -bws expand to a job grid that runs
// simulate→inject→analyze per cell on -jobs workers, printing one result
// row per cell instead of writing a capture:
//
//	emsim -parallel -device olimex,samsung -workload micro:256:8,spec:mcf -seeds 3 -jobs 4
//	emsim -parallel -device olimex -bws 20e6,40e6,80e6 -fault-dropout 0.005
//
// The probe can be displaced from the best-coupling reference placement
// (-probe-x/-probe-y/-probe-orient), bumped or drifted mid-capture
// (-fault-probe-*), and -probe-search replaces acquisition with a
// SCNIFFER-style compass search that auto-places the probe:
//
//	emsim -device olimex -probe-x 2.5 -probe-orient 30 -o off.cap
//	emsim -device olimex -fault-probe-bump 1.75 -fault-probe-bump-at 0.0005 -o bumped.cap
//	emsim -probe-search -device olimex -probe-x 4 -probe-y -3
//	emsim -parallel -device olimex -probe-offsets 0,1,2,4
//
// With -fleet it becomes the fleet load harness: -sessions concurrent
// clients stream the simulated capture through an emprofd router —
// an in-process router+shards fleet (with one forced rebalance), or an
// external one via -fleet-url — verifying zero lost sessions and zero
// double-ingested samples, then printing the aggregated fleet metrics:
//
//	emsim -fleet -sessions 50
//	emsim -fleet -fleet-url http://localhost:7979 -sessions 50
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"emprof"
	"emprof/internal/em"
	"emprof/internal/experiments"
	"emprof/internal/version"
)

func main() {
	var (
		deviceName = flag.String("device", "olimex", "target device: alcatel, samsung, olimex, sesc (comma-separated in -parallel mode)")
		workload   = flag.String("workload", "micro:256:8", "workload: micro:TM:CM, spec:NAME, boot, or file:PATH.json (comma-separated in -parallel mode)")
		scale      = flag.Float64("scale", 1, "spec/boot instruction budget in millions")
		bw         = flag.Float64("bw", 0, "measurement bandwidth in Hz (0 = device default)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		noiseFree  = flag.Bool("noise-free", false, "disable probe noise and supply drift")
		out        = flag.String("o", "capture.cap", "output capture file")
		truth      = flag.Bool("truth", false, "print ground-truth summary to stdout")
		serveURL   = flag.String("serve-url", "", "stream the capture to an emprofd daemon at this URL instead of writing a file")
		fleetMode  = flag.Bool("fleet", false, "fleet load mode: stream the capture concurrently from -sessions clients through a router+shards fleet, with a forced mid-run rebalance, and report latency percentiles")
		fleetURL   = flag.String("fleet-url", "", "with -fleet: target an external router instead of booting an in-process fleet (external fleets are not rebalanced)")
		fleetN     = flag.Int("fleet-shards", 2, "with -fleet: in-process shard count")
		sessions   = flag.Int("sessions", 50, "with -fleet: concurrent capture streams")
		fleetOut   = flag.String("fleet-out", "", "with -fleet: write the ingest benchmark JSON report to this file")
		traceOut   = flag.String("trace", "", "with -serve-url: save the daemon's decision trace for the session to this JSONL file before finalizing")
		showVer    = flag.Bool("version", false, "print version and exit")

		// Probe placement: displace the processor probe from the reference
		// point, or search for the best placement instead of capturing.
		probeX      = flag.Float64("probe-x", 0, "probe x displacement from the reference placement in mm")
		probeY      = flag.Float64("probe-y", 0, "probe y displacement from the reference placement in mm")
		probeOrient = flag.Float64("probe-orient", 0, "probe loop-plane misalignment in degrees")
		probeSearch = flag.Bool("probe-search", false, "run the SCNIFFER-style placement search from the -probe-x/-probe-y start instead of capturing")
		probeStep   = flag.Float64("probe-step", 0, "placement search initial compass step in mm (0 = default)")
		probeMin    = flag.Float64("probe-min-step", 0, "placement search final step in mm (0 = default)")
		probeEvals  = flag.Int("probe-evals", 0, "placement search pilot-capture budget (0 = default)")
		probeOffs   = flag.String("probe-offsets", "", "comma-separated sweep probe offsets in mm (empty = reference placement)")

		// Sweep mode: run a device × workload × seed × bandwidth grid on a
		// worker pool and print per-cell analysis results.
		parallel = flag.Bool("parallel", false, "run a sweep over the device/workload/seed/bandwidth grid instead of writing one capture")
		jobs     = flag.Int("jobs", 0, "sweep worker count (0 = GOMAXPROCS)")
		seeds    = flag.Int("seeds", 1, "sweep seeds 1..N per grid cell")
		bws      = flag.String("bws", "", "comma-separated sweep bandwidths in Hz (empty = device default)")

		// Acquisition fault injection (internal/faults): impair the clean
		// capture before writing it, to exercise robustness downstream.
		faultDropout     = flag.Float64("fault-dropout", 0, "fraction of samples lost to zero-filled dropouts")
		faultDropoutLen  = flag.Float64("fault-dropout-len", 0, "mean dropout gap length in samples (0 = default)")
		faultClip        = flag.Float64("fault-clip", 0, "ADC saturation ceiling (absolute magnitude, 0 = off)")
		faultGainSteps   = flag.Float64("fault-gain-steps", 0, "expected receiver gain steps per second")
		faultDrift       = flag.Float64("fault-drift", 0, "probe-coupling drift depth in [0,1)")
		faultBurst       = flag.Float64("fault-burst", 0, "fraction of samples hit by impulsive RF bursts")
		faultNaN         = flag.Float64("fault-nan", 0, "per-sample probability of NaN corruption")
		faultProbeDrift  = flag.Float64("fault-probe-drift", 0, "slow probe-position drift amplitude in mm")
		faultProbeBump   = flag.Float64("fault-probe-bump", 0, "mid-capture probe bump displacement in mm (signed)")
		faultProbeBumpAt = flag.Float64("fault-probe-bump-at", 0, "probe bump time in seconds from capture start")
		faultSeed        = flag.Uint64("fault-seed", 1, "fault-injection seed")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Printf("emsim %s\n", version.Version)
		return
	}

	// Profiles are written on the normal return paths; fatal() exits
	// directly, so failed runs leave no (partial) profile behind.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "emsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "emsim: memprofile:", err)
			}
		}()
	}

	spec := emprof.FaultSpec{
		DropoutRate:    *faultDropout,
		DropoutMeanLen: *faultDropoutLen,
		ClipLevel:      *faultClip,
		GainStepsPerS:  *faultGainSteps,
		DriftDepth:     *faultDrift,
		BurstRate:      *faultBurst,
		NaNRate:        *faultNaN,
		ProbeDriftMM:   *faultProbeDrift,
		ProbeBumpMM:    *faultProbeBump,
		ProbeBumpAtS:   *faultProbeBumpAt,
		Seed:           *faultSeed,
	}
	// Gate on any fault flag being set at all (not spec.Enabled, which is
	// false for out-of-range values): a typo like -fault-dropout -0.1 must
	// reach validation and error out, not be silently ignored.
	faultsSet := spec != (emprof.FaultSpec{Seed: spec.Seed})
	probe := emprof.ProbePosition{XMM: *probeX, YMM: *probeY, OrientationDeg: *probeOrient}

	if *probeSearch {
		runProbeSearch(*deviceName, *workload, *scale, *seed, *bw, probe,
			*probeStep, *probeMin, *probeEvals)
		return
	}
	if *parallel {
		runSweep(*deviceName, *workload, *bws, *probeOffs, *scale, *seeds, *jobs, *noiseFree, faultsSet, spec)
		return
	}

	dev, err := emprof.DeviceByName(*deviceName)
	if err != nil {
		fatal(err)
	}
	wl, err := emprof.ParseWorkload(*workload, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{
		Seed:        *seed,
		BandwidthHz: *bw,
		NoiseFree:   *noiseFree,
		Probe:       probe,
	})
	if err != nil {
		fatal(err)
	}
	capture := run.Capture
	if faultsSet {
		impaired, rep, err := emprof.InjectFaults(capture, spec)
		if err != nil {
			fatal(err)
		}
		capture = impaired
		fmt.Printf("injected faults: %s\n", rep)
	}
	if *fleetMode {
		runFleetLoad(capture, *fleetURL, *fleetN, *sessions, *fleetOut)
		return
	}
	if *serveURL != "" {
		serveCapture(*serveURL, *deviceName, *traceOut, capture)
		return
	}
	if *traceOut != "" {
		fatal(fmt.Errorf("-trace requires -serve-url (local runs write captures, not traces; use emprof -trace)"))
	}
	if err := em.SaveCapture(*out, capture); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d samples at %.2f MHz (%.3f ms on %s)\n",
		*out, len(capture.Samples), capture.SampleRate/1e6,
		capture.Duration()*1e3, dev.Name)
	if *truth {
		tr := run.Truth
		fmt.Printf("ground truth: cycles=%d instructions=%d IPC=%.2f\n",
			tr.Cycles, tr.Instructions, tr.IPC())
		fmt.Printf("  LLC misses=%d stall intervals=%d fully-stalled cycles=%d (%.2f%%)\n",
			len(tr.Misses), len(tr.Stalls), tr.FullStallCycles, 100*tr.StallFraction())
	}
}

// runSweep expands the grid flags into jobs, executes them on the worker
// pool, and prints one row per cell.
func runSweep(devices, workloads, bws, probeOffs string, scale float64, seeds, workers int, noiseFree, faultsSet bool, spec emprof.FaultSpec) {
	grid := emprof.SweepGrid{
		Devices:   splitList(devices),
		Workloads: splitList(workloads),
		ScaleM:    scale,
		NoiseFree: noiseFree,
	}
	for s := 1; s <= seeds; s++ {
		grid.Seeds = append(grid.Seeds, uint64(s))
	}
	for _, f := range splitList(bws) {
		hz, err := strconv.ParseFloat(f, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -bws entry %q: %w", f, err))
		}
		grid.BandwidthsHz = append(grid.BandwidthsHz, hz)
	}
	for _, f := range splitList(probeOffs) {
		mm, err := strconv.ParseFloat(f, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -probe-offsets entry %q: %w", f, err))
		}
		grid.ProbeOffsetsMM = append(grid.ProbeOffsetsMM, mm)
	}
	if faultsSet {
		grid.Faults = spec
	}
	jobs := grid.Jobs()
	fmt.Printf("sweep: %d jobs\n", len(jobs))
	res, err := emprof.RunSweep(context.Background(), jobs, emprof.SweepOptions{Workers: workers})
	if err != nil {
		fatal(err)
	}
	// The probe column only appears when the sweep actually has a
	// displacement dimension, keeping the default output stable.
	withProbe := len(grid.ProbeOffsetsMM) > 0
	probeHdr, probeCell := "", ""
	if withProbe {
		probeHdr = fmt.Sprintf(" %8s", "probe")
	}
	fmt.Printf("%-8s %-14s %5s %9s%s  %8s %8s %9s %9s\n",
		"device", "workload", "seed", "bw", probeHdr, "misses", "true", "stall-cyc", "true-cyc")
	failed := 0
	for _, r := range res {
		bwLabel := "default"
		if r.Job.BandwidthHz > 0 {
			bwLabel = fmt.Sprintf("%.0fMHz", r.Job.BandwidthHz/1e6)
		}
		if withProbe {
			probeCell = fmt.Sprintf(" %6.2fmm", r.Job.Probe.OffsetMM())
		}
		if r.Err != nil {
			failed++
			fmt.Printf("%-8s %-14s %5d %9s%s  error: %v\n",
				r.Job.Device, r.Job.Workload, r.Job.Seed, bwLabel, probeCell, r.Err)
			continue
		}
		fmt.Printf("%-8s %-14s %5d %9s%s  %8d %8d %9.0f %9d\n",
			r.Job.Device, r.Job.Workload, r.Job.Seed, bwLabel, probeCell,
			r.Profile.Misses, r.TrueMisses, r.Profile.StallCycles, r.TrueStallCycles)
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d/%d jobs failed", failed, len(res)))
	}
}

// runProbeSearch auto-places the probe: a compass search over the
// placement plane maximising received signal strength × profile
// trustworthiness, printing the search path and the recovered placement.
func runProbeSearch(device, workload string, scale float64, seed uint64, bw float64, start emprof.ProbePosition, step, minStep float64, evals int) {
	res, err := emprof.SearchProbePlacement(context.Background(), emprof.ProbeSearchOptions{
		Device:      device,
		Workload:    workload,
		ScaleM:      scale,
		Seed:        seed,
		BandwidthHz: bw,
		Start:       start,
		StepMM:      step,
		MinStepMM:   minStep,
		MaxEvals:    evals,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("probe search: %d pilot captures from %s\n", len(res.Evals), start)
	for i, e := range res.Evals {
		fmt.Printf("  %3d  %-28s score %.4f\n", i+1, e.Position.String(), e.Score)
	}
	fmt.Printf("best placement: %s (score %.4f, %.2f mm from reference)\n",
		res.Best, res.Score, res.Best.OffsetMM())
}

// runFleetLoad drives the fleet load harness with the simulated
// capture: -sessions concurrent clients stream it through a router —
// in-process (with one forced rebalance mid-run) or external — and the
// run fails unless every session finalizes bit-identical to the batch
// analysis with zero samples lost or double-ingested. The aggregated
// fleet metrics print afterwards for smoke tests to grep.
func runFleetLoad(capture *emprof.Capture, url string, shards, sessions int, outPath string) {
	// Size chunks off the capture so every stream takes several pushes —
	// the mid-run rebalance must land between chunks, not after the
	// stream already finished.
	chunk := len(capture.Samples)/8 + 1
	rep, err := experiments.RunIngestBench(experiments.IngestBenchOptions{
		Shards:       shards,
		Sessions:     sessions,
		ChunkSamples: chunk,
		Capture:      capture,
		Rebalance:    url == "",
		RouterURL:    url,
		MetricsTo:    os.Stdout,
	}, os.Stdout)
	if err != nil {
		fatal(err)
	}
	if outPath != "" {
		if err := experiments.WriteIngestBench(rep, outPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	fmt.Printf("fleet load passed: %d sessions, every profile bit-identical, no samples lost or double-ingested\n", sessions)
}

// serveCapture streams the capture to an emprofd daemon and prints the
// final profile the daemon computed — acquisition and analysis with no
// capture file in between.
func serveCapture(url, device, traceOut string, capture *emprof.Capture) {
	ctx := context.Background()
	client := emprof.NewClient(url)
	id, err := client.CreateSession(ctx, emprof.SessionSpec{
		SampleRate: capture.SampleRate,
		ClockHz:    capture.ClockHz,
		Device:     device,
	})
	if err != nil {
		fatal(fmt.Errorf("creating session at %s: %w", url, err))
	}
	if err := client.StreamCapture(ctx, id, capture); err != nil {
		fatal(err)
	}
	// The trace must be pulled before Finalize tears the session down.
	if traceOut != "" {
		tr, err := client.Trace(ctx, id)
		if err != nil {
			fatal(fmt.Errorf("fetching session trace: %w", err))
		}
		if !tr.Enabled {
			fmt.Fprintln(os.Stderr, "emsim: daemon has per-session tracing disabled; writing empty trace")
		}
		if err := writeTraceJSONL(traceOut, tr); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d trace events (%d dropped from the daemon ring)\n",
			traceOut, len(tr.Records), tr.Dropped)
	}
	prof, err := client.Finalize(ctx, id)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("streamed %d samples (%.3f ms on %s) to %s, session %s\n",
		len(capture.Samples), capture.Duration()*1e3, device, url, id)
	fmt.Printf("profile: misses=%d refresh-stalls=%d stall-cycles=%.0f (%.2f%% of %.0f) quality=%s\n",
		prof.Misses, prof.RefreshStalls, prof.StallCycles,
		100*prof.StallFraction(), prof.ExecCycles, prof.Quality)
}

// writeTraceJSONL saves a fetched session trace in the same JSONL format
// emprof -trace produces, one record per line.
func writeTraceJSONL(path string, tr *emprof.SessionTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for i := range tr.Records {
		if err := enc.Encode(&tr.Records[i]); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emsim:", err)
	os.Exit(1)
}
