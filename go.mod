module emprof

go 1.22
