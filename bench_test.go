// Benchmarks regenerating every table and figure of the paper (run with
// `go test -bench=. -benchmem`), plus the ablation benches called out in
// DESIGN.md. Each experiment bench reports its headline quantity as a
// custom metric so `bench_output.txt` doubles as a results record.
package emprof_test

import (
	"context"
	"testing"

	"emprof"
	"emprof/internal/core"
	"emprof/internal/device"
	"emprof/internal/dsp"
	"emprof/internal/em"
	"emprof/internal/experiments"
	"emprof/internal/mem"
	"emprof/internal/sim"
	"emprof/internal/workloads"
)

func benchOpts() experiments.Options {
	return experiments.Options{Scale: 0.25, Seed: 1, Quick: true}
}

// --- Tables ---

func BenchmarkTable2MicroAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AveragePct, "avg-accuracy-%")
	}
}

func BenchmarkTable3SimValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var miss, stall float64
		n := 0
		for _, r := range append(res.Micro, res.SPEC...) {
			miss += r.MissPct
			stall += r.StallPct
			n++
		}
		b.ReportMetric(miss/float64(n), "miss-accuracy-%")
		b.ReportMetric(stall/float64(n), "stall-accuracy-%")
	}
}

func BenchmarkTable4Profiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Average.LatencyPct[2], "olimex-stall-%")
	}
}

func BenchmarkTable5Attribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.FrameAccuracy, "frame-accuracy-%")
	}
}

func BenchmarkPerfBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPerfBaseline(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Mean/float64(res.TrueMisses), "overcount-x")
	}
}

func BenchmarkStability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStability(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.EMProf.StdDev/res.EMProf.Mean, "emprof-rel-stddev-%")
	}
}

// --- Figures ---

func benchFigure(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, ok := experiments.Registry[name]
		if !ok {
			b.Fatalf("unknown experiment %s", name)
		}
		if _, err := r(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1StallSignal(b *testing.B)      { benchFigure(b, "fig1") }
func BenchmarkFig2SimulatorHitMiss(b *testing.B) { benchFigure(b, "fig2") }
func BenchmarkFig3OverlapHiding(b *testing.B)    { benchFigure(b, "fig3") }
func BenchmarkFig4PhysicalHitMiss(b *testing.B)  { benchFigure(b, "fig4") }
func BenchmarkFig5Refresh(b *testing.B)          { benchFigure(b, "fig5") }
func BenchmarkFig7MicroSignal(b *testing.B)      { benchFigure(b, "fig7") }
func BenchmarkFig8SimVsDevice(b *testing.B)      { benchFigure(b, "fig8") }
func BenchmarkFig10DualProbe(b *testing.B)       { benchFigure(b, "fig10") }
func BenchmarkFig11Histogram(b *testing.B)       { benchFigure(b, "fig11") }
func BenchmarkFig12Bandwidth(b *testing.B)       { benchFigure(b, "fig12") }
func BenchmarkFig13Boot(b *testing.B)            { benchFigure(b, "fig13") }
func BenchmarkFig14Spectrogram(b *testing.B)     { benchFigure(b, "fig14") }

// --- Component benchmarks ---

// benchCapture builds one reusable Olimex microbenchmark capture.
func benchCapture(b *testing.B) *emprof.Capture {
	b.Helper()
	w, err := emprof.Microbenchmark(128, 8)
	if err != nil {
		b.Fatal(err)
	}
	run, err := emprof.Simulate(emprof.DeviceOlimex(), w, emprof.CaptureOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return run.Capture
}

func BenchmarkSimulateMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := emprof.Microbenchmark(128, 8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := emprof.Simulate(emprof.DeviceOlimex(), w, emprof.CaptureOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileCapture(b *testing.B) {
	cap := benchCapture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emprof.Analyze(cap, emprof.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * len(cap.Samples)))
}

func BenchmarkSimulatorCycleRate(b *testing.B) {
	// Cycles simulated per second of wall time for a SPEC-like workload.
	w, err := emprof.SPECWorkload("mcf", 0.2)
	if err != nil {
		b.Fatal(err)
	}
	run, err := emprof.Simulate(emprof.DeviceOlimex(), w, emprof.CaptureOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cycles := run.Truth.Cycles
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := emprof.SPECWorkload("mcf", 0.2)
		if _, err := emprof.Simulate(emprof.DeviceOlimex(), w, emprof.CaptureOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
}

// --- Ablations (DESIGN.md) ---

// ablationRun produces a capture plus its expected count once.
func ablationRun(b *testing.B) (*emprof.Capture, int) {
	b.Helper()
	const tm = 128
	w, err := emprof.Microbenchmark(tm, 8)
	if err != nil {
		b.Fatal(err)
	}
	run, err := emprof.Simulate(emprof.DeviceOlimex(), w, emprof.CaptureOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	slice, err := run.SliceRegion(workloads.RegionMisses)
	if err != nil {
		b.Fatal(err)
	}
	return slice, tm
}

func ablate(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	slice, tm := ablationRun(b)
	cfg := core.DefaultConfig()
	mutate(&cfg)
	an, err := core.NewAnalyzer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		p := an.Profile(slice)
		acc = p.CountAccuracy(tm).Percent
	}
	b.ReportMetric(acc, "count-accuracy-%")
}

// BenchmarkAblationNormWindow sweeps the moving min/max window.
func BenchmarkAblationNormWindow(b *testing.B) {
	for _, winUS := range []float64{20, 50, 200, 1000, 5000} {
		b.Run(formatUS(winUS), func(b *testing.B) {
			ablate(b, func(c *core.Config) { c.NormWindowS = winUS * 1e-6 })
		})
	}
}

// BenchmarkAblationThreshold sweeps the dip-entry threshold.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, th := range []float64{0.15, 0.25, 0.32, 0.45, 0.6} {
		b.Run(formatFrac(th), func(b *testing.B) {
			ablate(b, func(c *core.Config) {
				c.EnterThreshold = th
				if c.ExitThreshold < th+0.05 {
					c.ExitThreshold = th + 0.1
				}
			})
		})
	}
}

// BenchmarkAblationMinDuration sweeps the minimum-stall duration.
func BenchmarkAblationMinDuration(b *testing.B) {
	for _, ns := range []float64{25, 90, 200, 400} {
		b.Run(formatNS(ns), func(b *testing.B) {
			ablate(b, func(c *core.Config) {
				c.MinStallS = ns * 1e-9
				if c.LongStallS < c.MinStallS {
					c.LongStallS = c.MinStallS
				}
			})
		})
	}
}

// BenchmarkMovingMinMaxDeque vs BenchmarkMovingMinMaxNaive: the O(1)
// amortised monotonic deque against the O(w) rescan baseline.
func BenchmarkMovingMinMaxDeque(b *testing.B) {
	const w = 8192
	m := dsp.NewMovingMin(w)
	rng := sim.NewRNG(1)
	xs := make([]float64, 1<<16)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Process(xs[i%len(xs)])
	}
}

func BenchmarkMovingMinMaxNaive(b *testing.B) {
	const w = 8192
	m := dsp.NewNaiveMovingMin(w)
	rng := sim.NewRNG(1)
	xs := make([]float64, 1<<16)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Process(xs[i%len(xs)])
	}
}

// BenchmarkAblationMSHR shows how miss-level parallelism makes stall
// accounting diverge from miss counting (paper Fig. 3a).
func BenchmarkAblationMSHR(b *testing.B) {
	for _, mshrs := range []int{1, 2, 4, 8} {
		b.Run(formatN(mshrs), func(b *testing.B) {
			dev := device.SESC()
			dev.Mem.MSHRs = mshrs
			var stallCycles uint64
			var misses int
			for i := 0; i < b.N; i++ {
				wl, err := workloads.OverlapKernel(workloads.OverlapKernelParams{
					Groups: 40, GroupSize: 6, GapWork: 600,
					LineBytes: 64, LLCBytes: dev.Mem.LLC.SizeBytes, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: 1, NoiseFree: true, BandwidthHz: 50e6})
				if err != nil {
					b.Fatal(err)
				}
				stallCycles = run.Truth.FullStallCycles
				misses = len(run.Truth.Misses)
			}
			b.ReportMetric(float64(stallCycles)/float64(misses), "stall-cycles/miss")
		})
	}
}

// BenchmarkAblationOoOWindow quantifies the paper's Section II-B
// observation: an out-of-order window lets the core avert the full stall
// for longer, shrinking the stall time EMPROF has to see.
func BenchmarkAblationOoOWindow(b *testing.B) {
	for _, window := range []int{0, 8, 16, 32} {
		b.Run("window-"+itoa(window), func(b *testing.B) {
			dev := device.SESC()
			dev.CPU.FetchQueue = 48
			dev.CPU.OoOWindow = window
			var stall, cycles uint64
			var misses int
			for i := 0; i < b.N; i++ {
				wl, err := emprof.SPECWorkload("mcf", 0.1)
				if err != nil {
					b.Fatal(err)
				}
				run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: 1, NoiseFree: true, BandwidthHz: 50e6})
				if err != nil {
					b.Fatal(err)
				}
				stall = run.Truth.FullStallCycles
				cycles = run.Truth.Cycles
				misses = len(run.Truth.Misses)
			}
			// Stall cycles per miss shrink as the window hides latency;
			// the stall *percentage* can rise because the busy portion
			// compresses even faster — both are reported.
			b.ReportMetric(float64(stall)/float64(misses), "stall-cyc/miss")
			b.ReportMetric(float64(cycles)/1000, "kcycles")
		})
	}
}

// parallelBenchCapture synthesizes a long capture (≥10M samples) with a
// realistic dip density directly, skipping the cycle-level simulator —
// simulating this many cycles would dominate the benchmark setup.
func parallelBenchCapture(n int) *emprof.Capture {
	rng := sim.NewRNG(42)
	s := make([]float64, n)
	busy := true
	left := 400
	for i := range s {
		if left == 0 {
			busy = !busy
			if busy {
				left = 200 + int(rng.Uint64()%600)
			} else {
				left = 4 + int(rng.Uint64()%14)
			}
		}
		left--
		v := 1.0
		if !busy {
			v = 0.12
		}
		s[i] = v + 0.03*rng.NormFloat64()
	}
	return &emprof.Capture{Samples: s, SampleRate: 50e6, ClockHz: 1e9}
}

// BenchmarkAnalyzeParallel compares sequential analysis against the
// chunked worker-pool analyzer on a long capture. The speedup scales
// with physical cores (the scan stage stays sequential); on a
// single-core host the parallel path degrades gracefully to a small
// coordination overhead.
func BenchmarkAnalyzeParallel(b *testing.B) {
	cap := parallelBenchCapture(12 << 20)
	cfg := emprof.DefaultConfig()
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			b.SetBytes(int64(8 * len(cap.Samples)))
			for i := 0; i < b.N; i++ {
				if _, err := emprof.AnalyzeParallel(cap, cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(8 * len(cap.Samples)))
		for i := 0; i < b.N; i++ {
			if _, err := emprof.Analyze(cap, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers-2", bench(2))
	b.Run("workers-4", bench(4))
	b.Run("workers-8", bench(8))
}

// BenchmarkSweep runs a device × seed grid through the sweep runner,
// serial vs parallel workers.
func BenchmarkSweep(b *testing.B) {
	grid := emprof.SweepGrid{
		Devices:   []string{"olimex", "samsung"},
		Workloads: []string{"micro:64:8"},
		Seeds:     []uint64{1, 2},
	}
	jobs := grid.Jobs()
	for _, workers := range []int{1, 4} {
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := emprof.RunSweep(context.Background(), jobs, emprof.SweepOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkStreamVsBatch compares the streaming and batch profilers on
// the same capture.
func BenchmarkStreamVsBatch(b *testing.B) {
	cap := benchCapture(b)
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := emprof.Analyze(cap, emprof.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(8 * len(cap.Samples)))
	})
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := emprof.AnalyzeStream(cap, emprof.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(8 * len(cap.Samples)))
	})
}

// BenchmarkAblationLLCCapacity sweeps the LLC size under a capacity-bound
// working set: the mechanism behind Table IV's Alcatel-vs-Olimex miss
// gap (its 1 MB LLC absorbs working sets that thrash 256 KB).
func BenchmarkAblationLLCCapacity(b *testing.B) {
	spec := []byte(`{
	  "Name": "capacity", "Seed": 3,
	  "Phases": [{
	    "Name": "warm", "Region": 1, "Insts": 1000000,
	    "LoadFrac": 0.3, "StoreFrac": 0.05,
	    "LoopLen": 48, "CodeBytes": 8192,
	    "WSBytes": 8388608, "HotBytes": 24576,
	    "WarmBytes": 393216, "WarmFrac": 0.12,
	    "DepFrac": 0.3
	  }]
	}`)
	for _, kb := range []int{256, 512, 1024, 2048} {
		b.Run("llc-"+itoa(kb)+"KB", func(b *testing.B) {
			dev := device.Olimex()
			dev.Mem.LLC.SizeBytes = kb << 10
			var misses int
			for i := 0; i < b.N; i++ {
				wl, err := emprof.CustomWorkload(spec)
				if err != nil {
					b.Fatal(err)
				}
				run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				misses = len(run.Truth.Misses)
			}
			b.ReportMetric(float64(misses), "LLC-misses")
		})
	}
}

// BenchmarkMemSystemAccess measures the raw memory-system access path.
func BenchmarkMemSystemAccess(b *testing.B) {
	dev := device.Olimex()
	ms, err := mem.NewSystem(dev.Mem, sim.NewRNG(1), false)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.Access(uint64(i*4), 0x1000, rng.Uint64()%(64<<20), mem.KindLoad)
	}
}

func formatUS(v float64) string   { return "window-" + itoa(int(v)) + "us" }
func formatNS(v float64) string   { return "min-" + itoa(int(v)) + "ns" }
func formatFrac(v float64) string { return "enter-" + itoa(int(v*100)) + "pct" }
func formatN(v int) string        { return "mshrs-" + itoa(v) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Synthesis pipeline (CI perf-regression gate) ---
//
// CI runs these with -bench='^BenchmarkSynthesis' -benchtime=1x -count=3 as
// a smoke pass, and embench -bench-synthesis -bench-check BENCH_synthesis.json
// as the quantitative gate. The ns/cycle metric is wall time per simulated
// clock cycle through the full simulate→synthesize→capture chain.

// synthBenchSeries mirrors the busy/stall power pattern used by the
// embench harness (internal/experiments/synthbench.go).
func synthBenchSeries(n int, seed uint64) []float64 {
	rng := sim.NewRNG(seed)
	s := make([]float64, n)
	busy := true
	left := 50
	for i := range s {
		if left == 0 {
			busy = !busy
			if busy {
				left = 30 + rng.Intn(120)
			} else {
				left = 5 + rng.Intn(40)
			}
		}
		left--
		if busy {
			s[i] = 1 + 0.3*rng.Float64()
		} else {
			s[i] = 0.25
		}
	}
	return s
}

// BenchmarkSynthesisSeries measures the SynthesizeFromSeries block path on
// a realistic impaired receiver (decimation 25, noise + drift).
func BenchmarkSynthesisSeries(b *testing.B) {
	cfg := em.ReceiverConfig{
		ClockHz:      1e9,
		BandwidthHz:  40e6,
		ProbeGain:    2,
		SNRdB:        15,
		DriftPeriodS: 1e-4,
		DriftDepth:   0.1,
		Seed:         1,
	}
	const cpv = 25
	vals := synthBenchSeries(1<<20/cpv, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.SynthesizeFromSeries(vals, cpv, cfg); err != nil {
			b.Fatal(err)
		}
	}
	cycles := float64(len(vals) * cpv)
	b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(b.N)/cycles, "ns/cycle")
	b.SetBytes(int64(8 * len(vals) * cpv))
}

// BenchmarkSynthesisEndToEnd measures the full simulate→synthesize→capture
// chain with the default simulator→receiver batching.
func BenchmarkSynthesisEndToEnd(b *testing.B) {
	benchSynthesisEndToEnd(b, 0)
}

// BenchmarkSynthesisEndToEndPerCycle is the same chain forced to strictly
// per-cycle delivery — the contrast documents what batching buys.
func BenchmarkSynthesisEndToEndPerCycle(b *testing.B) {
	benchSynthesisEndToEnd(b, 1)
}

func benchSynthesisEndToEnd(b *testing.B, batch int) {
	run1 := func() *emprof.Run {
		w, err := emprof.Microbenchmark(128, 8)
		if err != nil {
			b.Fatal(err)
		}
		r, err := emprof.Simulate(emprof.DeviceOlimex(), w, emprof.CaptureOptions{Seed: 1, BatchCycles: batch})
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	cycles := run1().Truth.Cycles
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run1()
	}
	b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(b.N)/float64(cycles), "ns/cycle")
}
