package emprof_test

import (
	"context"
	"fmt"
	"log"

	"emprof"
)

// Example profiles the paper's engineered microbenchmark on the Olimex
// IoT-board model and checks EMPROF's count against the engineered miss
// count — the repository's headline result.
func Example() {
	const tm = 256
	w, err := emprof.Microbenchmark(tm, 8)
	if err != nil {
		log.Fatal(err)
	}
	run, err := emprof.Simulate(emprof.DeviceOlimex(), w, emprof.CaptureOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	prof, err := emprof.Analyze(run.Capture, emprof.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("count accuracy >= 98%:", prof.CountAccuracy(tm).Percent >= 98)
	// Output: count accuracy >= 98%: true
}

// ExampleAnalyzeStream shows that the bounded-memory streaming profiler
// produces the same result as the batch analyzer.
func ExampleAnalyzeStream() {
	w, err := emprof.Microbenchmark(64, 8)
	if err != nil {
		log.Fatal(err)
	}
	run, err := emprof.Simulate(emprof.DeviceOlimex(), w, emprof.CaptureOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	batch, err := emprof.Analyze(run.Capture, emprof.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stream, err := emprof.AnalyzeStream(run.Capture, emprof.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stream matches batch:", len(stream.Stalls) == len(batch.Stalls))
	// Output: stream matches batch: true
}

// ExampleNewAnalyzer shows the options-based analyzer API: one
// constructor covers the batch, parallel and streaming execution paths
// (all bit-identical), and an observer can be attached to trace every
// detection decision the profiler makes.
func ExampleNewAnalyzer() {
	w, err := emprof.Microbenchmark(64, 8)
	if err != nil {
		log.Fatal(err)
	}
	run, err := emprof.Simulate(emprof.DeviceOlimex(), w, emprof.CaptureOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// A metrics observer aggregates the analyzer's decisions as it runs;
	// WithWorkers(0) analyses the capture on all cores.
	m := emprof.NewTraceMetrics()
	an, err := emprof.NewAnalyzer(emprof.DefaultConfig(),
		emprof.WithWorkers(0),
		emprof.WithObserver(m),
	)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := an.Run(context.Background(), run.Capture)
	if err != nil {
		log.Fatal(err)
	}

	snap := m.Snapshot()
	var rejected uint64
	for _, n := range snap.Rejected {
		rejected += n
	}
	fmt.Println("every stall was traced:", int(snap.StallsAccepted) == len(prof.Stalls))
	fmt.Println("every dip was resolved:", snap.DipCandidates == snap.StallsAccepted+rejected)
	// Output:
	// every stall was traced: true
	// every dip was resolved: true
}

// ExampleCaptureOptions demonstrates sweeping the measurement bandwidth,
// the Fig. 12 experiment: at 20 MHz the receiver cannot resolve short
// stalls that 80 MHz sees clearly.
func ExampleCaptureOptions() {
	wl, err := emprof.SPECWorkload("mcf", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	run20, err := emprof.Simulate(emprof.DeviceAlcatel(), wl, emprof.CaptureOptions{Seed: 1, BandwidthHz: 20e6})
	if err != nil {
		log.Fatal(err)
	}
	wl2, _ := emprof.SPECWorkload("mcf", 0.5)
	run80, err := emprof.Simulate(emprof.DeviceAlcatel(), wl2, emprof.CaptureOptions{Seed: 1, BandwidthHz: 80e6})
	if err != nil {
		log.Fatal(err)
	}
	cfg := emprof.DefaultConfig()
	p20, _ := emprof.Analyze(run20.Capture, cfg)
	p80, _ := emprof.Analyze(run80.Capture, cfg)
	fmt.Println("20 MHz misses stalls that 80 MHz sees:", len(p20.Stalls) < len(p80.Stalls))
	// Output: 20 MHz misses stalls that 80 MHz sees: true
}
