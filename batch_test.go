package emprof_test

import (
	"testing"

	emprof "emprof"
)

// TestSimulateBatchCyclesInvariant is the end-to-end contract for the
// block-vectorized synthesis pipeline: the batch size at the
// simulator→receiver boundary is a pure performance knob. Captures, the
// memory-probe capture and the SESC-style power trace must be bit-identical
// whether power is delivered strictly per cycle, in the default blocks, or
// in a deliberately odd batch size that never divides the capture evenly.
func TestSimulateBatchCyclesInvariant(t *testing.T) {
	run := func(batch int) *emprof.Run {
		// Workload streams are single-use; build a fresh (deterministic)
		// one per run.
		w, err := emprof.Microbenchmark(64, 8)
		if err != nil {
			t.Fatal(err)
		}
		r, err := emprof.Simulate(emprof.DeviceOlimex(), w, emprof.CaptureOptions{
			Seed:        42,
			PowerProxy:  true,
			MemoryProbe: true,
			BatchCycles: batch,
		})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		return r
	}
	ref := run(1) // strictly per-cycle
	for _, batch := range []int{0, 613, 4096} {
		got := run(batch)
		compareSamples(t, batch, "capture", got.Capture.Samples, ref.Capture.Samples)
		compareSamples(t, batch, "mem capture", got.MemCapture.Samples, ref.MemCapture.Samples)
		compareSamples(t, batch, "power trace", got.PowerTrace, ref.PowerTrace)
		if got.Truth.Cycles != ref.Truth.Cycles {
			t.Errorf("batch %d: %d cycles, want %d", batch, got.Truth.Cycles, ref.Truth.Cycles)
		}
	}
}

func compareSamples(t *testing.T, batch int, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("batch %d: %s has %d samples, want %d", batch, what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch %d: %s sample %d = %v, want %v (bitwise)", batch, what, i, got[i], want[i])
		}
	}
}
