package emprof_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"emprof"
)

func wireBytes(samples []float64) []byte {
	out := make([]byte, len(samples)*8)
	for i, v := range samples {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// TestClientPooledBodySurvivesRetries pins the retry-safety of the
// client's pooled encode buffers: a push that is 503-rejected twice
// before landing must deliver the exact encoded bytes on the final
// attempt — the pooled buffer may not be recycled (and overwritten by a
// later push) while a retried bytes.Reader can still reference it.
func TestClientPooledBodySurvivesRetries(t *testing.T) {
	var attempts atomic.Int64
	var mu sync.Mutex
	var landed [][]byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		if n%3 != 0 { // two rejections, then accept
			// Reject WITHOUT reading the body: the transport's write loop
			// may still be streaming it when the client sees the response,
			// which is exactly the window recycling must respect.
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"backpressure"}`)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("reading body: %v", err)
		}
		mu.Lock()
		landed = append(landed, body)
		mu.Unlock()
		fmt.Fprint(w, `{"samples_ingested":0,"bytes_ingested":0}`)
	}))
	defer ts.Close()

	client := emprof.NewClient(ts.URL)
	client.MaxRetries = 5
	client.RetryBaseDelay = 1
	client.RetryRand = func() float64 { return 0 }

	const pushes = 20
	for k := 0; k < pushes; k++ {
		samples := make([]float64, 512)
		for i := range samples {
			samples[i] = float64(k*1000 + i)
		}
		if err := client.PushSamples(context.Background(), "s", samples); err != nil {
			t.Fatalf("push %d: %v", k, err)
		}
		want := wireBytes(samples)
		mu.Lock()
		got := landed[len(landed)-1]
		mu.Unlock()
		if !bytes.Equal(got, want) {
			t.Fatalf("push %d: body corrupted across retries", k)
		}
	}
}

// TestClientPooledBodyConcurrentPushes hammers the pooled encode path
// from many goroutines against a randomly-rejecting server, with the
// server verifying every landed body against the pattern its session ID
// encodes. Run under -race this catches a buffer recycled while another
// push (or a lingering transport write) still reads it.
func TestClientPooledBodyConcurrentPushes(t *testing.T) {
	var attempts sync.Map // session path -> *atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		na, _ := attempts.LoadOrStore(r.URL.Path, new(atomic.Int64))
		// Per session: two rejections, then accept — every push retries,
		// but none can exhaust its retry budget.
		if na.(*atomic.Int64).Add(1)%3 != 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"backpressure"}`)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("reading body: %v", err)
			return
		}
		// The path is /v1/sessions/{id}/samples; id encodes the pattern.
		var id int
		if _, err := fmt.Sscanf(r.URL.Path, "/v1/sessions/g%d/samples", &id); err != nil {
			t.Errorf("bad path %q", r.URL.Path)
			return
		}
		for i := 0; i+8 <= len(body); i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(body[i:]))
			if want := float64(id*100000 + i/8); v != want {
				t.Errorf("session g%d sample %d: got %v want %v (cross-push buffer reuse)", id, i/8, v, want)
				return
			}
		}
		fmt.Fprint(w, `{"samples_ingested":0,"bytes_ingested":0}`)
	}))
	defer ts.Close()

	const goroutines, pushesEach = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := emprof.NewClient(ts.URL)
			client.MaxRetries = 8
			client.RetryBaseDelay = 1
			client.RetryRand = func() float64 { return 0 }
			samples := make([]float64, 256)
			for i := range samples {
				samples[i] = float64(g*100000 + i)
			}
			for k := 0; k < pushesEach; k++ {
				if err := client.PushSamples(context.Background(), fmt.Sprintf("g%d", g), samples); err != nil {
					t.Errorf("goroutine %d push %d: %v", g, k, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
