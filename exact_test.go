package emprof

import (
	"reflect"
	"testing"
)

// TestSimulateExactThreeWay is the top-level equivalence contract for the
// event-driven simulator: over the sweep grid (both devices, the standard
// microbenchmark, two seeds), (1) Simulate and SimulateExact must return
// bit-identical runs — captures, power proxy, memory probe and ground
// truth — and (2) the analysis side must agree: Analyze and
// AnalyzeParallel produce the same Profile from either capture.
func TestSimulateExactThreeWay(t *testing.T) {
	devices := []struct {
		name string
		dev  Device
	}{
		{"olimex", DeviceOlimex()},
		{"samsung", DeviceSamsung()},
	}
	w, err := Microbenchmark(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devices {
		for _, seed := range []uint64{1, 2} {
			opts := CaptureOptions{
				Seed:        seed,
				PowerProxy:  true,
				MemoryProbe: true,
			}
			fast, err := Simulate(d.dev, w, opts)
			if err != nil {
				t.Fatalf("%s seed %d: Simulate: %v", d.name, seed, err)
			}
			exact, err := SimulateExact(d.dev, w, opts)
			if err != nil {
				t.Fatalf("%s seed %d: SimulateExact: %v", d.name, seed, err)
			}
			// The Exact flag itself is the only permitted difference; the
			// whole observable Run must match bitwise.
			if !reflect.DeepEqual(fast.Capture, exact.Capture) {
				t.Fatalf("%s seed %d: processor captures diverge", d.name, seed)
			}
			if !reflect.DeepEqual(fast.MemCapture, exact.MemCapture) {
				t.Fatalf("%s seed %d: memory captures diverge", d.name, seed)
			}
			if !reflect.DeepEqual(fast.PowerTrace, exact.PowerTrace) || fast.PowerRate != exact.PowerRate {
				t.Fatalf("%s seed %d: power proxies diverge", d.name, seed)
			}
			if !reflect.DeepEqual(fast.Truth, exact.Truth) {
				t.Fatalf("%s seed %d: ground truth diverges:\n fast %+v\nexact %+v",
					d.name, seed, fast.Truth, exact.Truth)
			}

			cfg := DefaultConfig()
			want, err := Analyze(exact.Capture, cfg)
			if err != nil {
				t.Fatalf("%s seed %d: Analyze(exact): %v", d.name, seed, err)
			}
			got, err := Analyze(fast.Capture, cfg)
			if err != nil {
				t.Fatalf("%s seed %d: Analyze(fast): %v", d.name, seed, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s seed %d: profiles diverge between paths", d.name, seed)
			}
			par, err := AnalyzeParallel(fast.Capture, cfg, 4)
			if err != nil {
				t.Fatalf("%s seed %d: AnalyzeParallel: %v", d.name, seed, err)
			}
			if !reflect.DeepEqual(par, want) {
				t.Fatalf("%s seed %d: AnalyzeParallel diverges from Analyze(exact)", d.name, seed)
			}
			if want.Misses == 0 || fast.Truth.Cycles == 0 {
				t.Fatalf("%s seed %d: degenerate run (misses %d, cycles %d)",
					d.name, seed, want.Misses, fast.Truth.Cycles)
			}
		}
	}
}

// FuzzSimulateSkipAhead mutates the Olimex device's core and memory shape
// and checks, for every configuration the validators accept, that the
// skip-ahead simulation stays bit-identical to the per-cycle reference —
// the simulator-side sibling of FuzzSynthesisBlock.
func FuzzSimulateSkipAhead(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(0), uint8(4), uint16(0), uint8(16), uint8(8))
	f.Add(uint64(7), uint8(1), uint8(12), uint8(1), uint16(3), uint8(64), uint8(1))
	f.Add(uint64(9), uint8(4), uint8(23), uint8(8), uint16(4097), uint8(128), uint8(15))
	f.Fuzz(func(t *testing.T, seed uint64, widthRaw, windowRaw, mshrRaw uint8, batchRaw uint16, tmRaw, cmRaw uint8) {
		dev := DeviceOlimex()
		dev.CPU.Width = int(widthRaw%4) + 1
		dev.CPU.OoOWindow = int(windowRaw) % (dev.CPU.FetchQueue + 1)
		dev.Mem.MSHRs = int(mshrRaw%8) + 1
		if err := dev.Validate(); err != nil {
			t.Skip(err)
		}
		w, err := Microbenchmark(int(tmRaw%128)+4, int(cmRaw%16)+1)
		if err != nil {
			t.Skip(err)
		}
		opts := CaptureOptions{Seed: seed, BatchCycles: int(batchRaw % 5000)}
		fast, err := Simulate(dev, w, opts)
		if err != nil {
			t.Fatalf("Simulate: %v", err)
		}
		exact, err := SimulateExact(dev, w, opts)
		if err != nil {
			t.Fatalf("SimulateExact: %v", err)
		}
		if !reflect.DeepEqual(fast.Truth, exact.Truth) {
			t.Fatalf("ground truth diverges (width=%d window=%d mshrs=%d batch=%d)",
				dev.CPU.Width, dev.CPU.OoOWindow, dev.Mem.MSHRs, opts.BatchCycles)
		}
		a, b := fast.Capture.Samples, exact.Capture.Samples
		if len(a) != len(b) {
			t.Fatalf("capture lengths %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("sample %d: skip-ahead %v, per-cycle %v (width=%d window=%d mshrs=%d batch=%d)",
					i, a[i], b[i], dev.CPU.Width, dev.CPU.OoOWindow, dev.Mem.MSHRs, opts.BatchCycles)
			}
		}
	})
}
