package emprof

import (
	"io"

	"emprof/internal/trace"
)

// This file exposes the decision-trace observability layer
// (internal/trace): attach an Observer with WithObserver (or
// StreamAnalyzer.SetObserver) to receive one typed event per analyzer
// decision — dip candidates, accepted and rejected stalls with reasons,
// normalisation resyncs, quality flags, parallel chunk merges, and stage
// timings. Observers never change the produced Profile, and analysis
// without one runs on the original allocation-free path.

// Observer receives analyzer decision events; see the trace package for
// the event taxonomy. Implementations used with WithWorkers (the
// parallel path) must be safe for concurrent use — every sink below is.
// Embed NopObserver to implement only the events of interest.
type Observer = trace.Observer

// NopObserver ignores every event; embed it in partial Observer
// implementations.
type NopObserver = trace.Nop

// TraceRecord is the flat serialisable form of one decision event — the
// unit written by the JSONL sink, retained by the ring sink, and served
// by emprofd's GET /v1/sessions/{id}/trace.
type TraceRecord = trace.Record

// Event payload types, for custom Observer implementations.
type (
	// DipCandidateEvent: the normalised signal crossed the entry
	// threshold and a dip opened.
	DipCandidateEvent = trace.DipCandidate
	// StallAcceptedEvent: a dip passed the duration and depth criteria
	// and was reported as a stall.
	StallAcceptedEvent = trace.StallAccepted
	// StallRejectedEvent: a candidate dip was discarded (too short, too
	// shallow, or overlapping an acquisition impairment).
	StallRejectedEvent = trace.StallRejected
	// ResyncEvent: the normalisation min/max state was re-seeded after a
	// gap or receiver gain step.
	ResyncEvent = trace.Resync
	// QualityFlagEvent: the signal-quality monitor flagged a sample.
	QualityFlagEvent = trace.QualityFlag
	// ChunkMergedEvent: the parallel analyzer replayed one normalised
	// chunk into the profile.
	ChunkMergedEvent = trace.ChunkMerged
	// StageTimingEvent: wall time of one pipeline stage (measured only
	// while tracing).
	StageTimingEvent = trace.StageTiming
)

// TraceJSONL writes one JSON object per decision event to a writer; the
// sink behind `emprof -trace out.jsonl`. Call Flush before reading the
// output.
type TraceJSONL = trace.JSONL

// NewTraceJSONL returns a JSONL trace sink writing to w.
func NewTraceJSONL(w io.Writer) *TraceJSONL { return trace.NewJSONL(w) }

// TraceRing retains the most recent decision events in memory — the
// per-session sink emprofd serves at GET /v1/sessions/{id}/trace.
type TraceRing = trace.Ring

// NewTraceRing returns a ring sink holding up to capacity events.
func NewTraceRing(capacity int) *TraceRing { return trace.NewRing(capacity) }

// TraceMetrics aggregates decision events into counters and histograms
// (stalls by reject reason, dip-depth distribution, resync causes,
// per-stage wall time) and can render them in Prometheus text format.
type TraceMetrics = trace.Metrics

// NewTraceMetrics returns an empty trace-metrics aggregator.
func NewTraceMetrics() *TraceMetrics { return trace.NewMetrics() }

// MultiObserver fans every event out to each observer in order; nil
// entries are dropped, and combining nothing yields nil (tracing off).
func MultiObserver(obs ...Observer) Observer { return trace.Multi(obs...) }
